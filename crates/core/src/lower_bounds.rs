//! Information-theoretic lower bounds (paper Theorems 3, 8, 9).
//!
//! These are *calculators*, not algorithms: each theorem's bound is a
//! closed-form function of the instance, and the experiments divide
//! measured round counts by these values to report optimality ratios
//! (Theorem 1 is universally optimal up to `O(log n)` when `k = Ω(n)` —
//! experiment E5 charts exactly that ratio).

/// Theorem 3 (universal lower bound for k-broadcast): any algorithm that
/// solves k-broadcast with probability ≥ 1/2 needs
/// `Ω(s·k / (λ·w))` rounds, where `s` is the entropy per message and `w`
/// the edge bandwidth per round. With the paper's convention `s = w =
/// Θ(log n)` this is `Ω(k/λ)`; the explicit constant from the proof is
/// `(s·k/2 − 4) / (2·w·λ)`.
pub fn theorem3_broadcast_lb(k: u64, lambda: u64) -> f64 {
    assert!(lambda > 0);
    if k == 0 {
        return 0.0;
    }
    // s = w cancels; proof constant: t > (sk/2 - 4) / (2wλ) ≈ k/(4λ).
    ((k as f64 / 2.0) - 4.0 / 64.0).max(0.0) / (2.0 * lambda as f64)
}

/// Theorem 8 (universal lower bound for learning all IDs, hence for
/// writing down APSP/cut estimates): `Ω(n/λ)` rounds; explicit form
/// `(n log n) / (2·λ·log n) = n/(2λ)` with the proof's ≥1/2-probability
/// constant.
pub fn theorem8_ids_lb(n: u64, lambda: u64) -> f64 {
    assert!(lambda > 0);
    n as f64 / (2.0 * lambda as f64)
}

/// Theorem 9 (existential lower bound for α-approximate *weighted* APSP
/// on a crafted family): `Ω(n / (λ·log α))` rounds; the crafted graph
/// encodes `k_max = Θ(log n / log α)` bits per node which node `v₁` must
/// learn through λ edges.
pub fn theorem9_weighted_apsp_lb(n: u64, lambda: u64, alpha: f64, c: f64) -> f64 {
    assert!(lambda > 0);
    assert!(alpha >= 1.0);
    assert!(c > 0.0);
    if n <= 2 {
        return 0.0;
    }
    let log2a = (2.0 * alpha).log2().max(1.0);
    let k_max = (c * (n as f64).log2() / log2a).floor().max(1.0);
    k_max * (n as f64 - 2.0) / (lambda as f64 * (n as f64).log2())
}

/// Optimality ratio: measured rounds over the Theorem 3 bound. Theorem 1
/// promises this stays `O(log n)` whenever `k = Ω(n)`.
pub fn optimality_ratio(measured_rounds: u64, k: u64, lambda: u64) -> f64 {
    let lb = theorem3_broadcast_lb(k, lambda);
    if lb <= 0.0 {
        f64::INFINITY
    } else {
        measured_rounds as f64 / lb
    }
}

/// The combined upper bound of §3.2:
/// `min{ O(D + k), O((n log n)/δ + (k log n)/λ) }` — the predicted round
/// count (up to constants) that experiments compare measurements against.
pub fn combined_upper_bound(n: u64, k: u64, d: u64, delta: u64, lambda: u64) -> f64 {
    assert!(delta > 0 && lambda > 0);
    let ln_n = (n.max(2) as f64).ln();
    let textbook = (d + k) as f64;
    let partition = (n as f64 * ln_n) / delta as f64 + (k as f64 * ln_n) / lambda as f64;
    textbook.min(partition)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem3_scales_linearly_in_k_over_lambda() {
        let base = theorem3_broadcast_lb(1000, 10);
        assert!((theorem3_broadcast_lb(2000, 10) / base - 2.0).abs() < 0.01);
        assert!((theorem3_broadcast_lb(1000, 20) / base - 0.5).abs() < 0.01);
        assert_eq!(theorem3_broadcast_lb(0, 5), 0.0);
    }

    #[test]
    fn theorem8_value() {
        assert_eq!(theorem8_ids_lb(1000, 10), 50.0);
    }

    #[test]
    fn theorem9_decreases_with_alpha() {
        let tight = theorem9_weighted_apsp_lb(1024, 8, 1.5, 2.0);
        let loose = theorem9_weighted_apsp_lb(1024, 8, 100.0, 2.0);
        assert!(tight > loose, "{tight} should exceed {loose}");
        assert_eq!(theorem9_weighted_apsp_lb(2, 8, 2.0, 2.0), 0.0);
    }

    #[test]
    fn combined_bound_picks_the_winner() {
        // Dense fast graph: partition term wins for large k.
        let n = 1024;
        let d = 4;
        let delta = 256;
        let lambda = 256;
        let k_small = 10;
        let k_large = 100_000;
        assert_eq!(
            combined_upper_bound(n, k_small, d, delta, lambda),
            (d + k_small) as f64
        );
        let partition = combined_upper_bound(n, k_large, d, delta, lambda);
        assert!(partition < (d + k_large) as f64);
    }

    #[test]
    fn optimality_ratio_from_measured_run() {
        use crate::broadcast::{partition_broadcast, BroadcastInput};
        let g = congest_graph::generators::harary(8, 48);
        let k = 96; // k = 2n: the universal-optimality regime
        let input = BroadcastInput::random_spread(&g, k, 7);
        let out = partition_broadcast(&g, &input, 8, 13).unwrap();
        assert!(out.all_delivered());
        let ratio = optimality_ratio(out.total_rounds, k as u64, 8);
        // Theorem 1: ratio = O(log n); generous constant for small n.
        let log_n = (48f64).ln();
        assert!(
            ratio <= 40.0 * log_n,
            "optimality ratio {ratio} too far above O(log n) = {log_n}"
        );
    }
}
