//! # congest-core — the paper's primary contribution
//!
//! Distributed algorithms from *"Fast Broadcast in Highly Connected
//! Networks"* (SPAA 2024), implemented as real message-passing programs on
//! the [`congest_sim`] engine:
//!
//! | paper | module | what it does |
//! |---|---|---|
//! | Lemma 2 | [`bfs`] | distributed BFS tree construction, plus the **parallel per-subgraph BFS** that explores all Theorem 2 subgraphs simultaneously |
//! | — | [`leader`] | flood-max leader election (prerequisite of Lemma 1) |
//! | Lemma 3 | [`convergecast`] | tree aggregates and distributed item numbering |
//! | Lemma 1 | [`pipeline`] | pipelined `O(depth + k)` tree gather + broadcast with `O(k)` congestion |
//! | textbook | [`textbook`] | the `O(D + k)` baseline: BFS tree + pipelined broadcast |
//! | Theorem 2 | [`partition`] | the communication-free random edge partition into `λ′` edge-disjoint spanning subgraphs |
//! | Theorem 1 | [`broadcast`] | the `O((n log n)/δ + (k log n)/λ)` k-broadcast |
//! | Remark §1.1 | [`exp_search`] | broadcast **without knowing λ** via exponential search |
//! | Lemma 4 | [`knowledge`] | learning δ in `O(D)` rounds (λ-learning substituted per DESIGN.md §2) |
//! | Theorems 3 & 8 | [`lower_bounds`] | information-theoretic universal lower-bound calculators |
//! | §1.2 | [`congested_clique`] | simulating rounds of the broadcast congested clique \[DKO14\] |
//! | §1.2 / \[FP23\] | [`resilient`] | replicated broadcast surviving a mobile edge adversary |
//! | robustness (DESIGN.md §3) | [`mod@watchdog`] | phase-boundary connectivity watchdog + retry-and-degrade broadcast under churn |
//!
//! All protocols are *message-driven* (progress on arrival rather than on
//! round counting), which makes them tolerant of the random-delay
//! scheduler ([`congest_sim::sched`]) and keeps round counts honest: a run
//! ends when the network is quiescent, and the engine reports the last
//! round that carried a message.

pub mod bfs;
pub mod broadcast;
pub mod congested_clique;
pub mod convergecast;
pub mod exp_search;
pub mod knowledge;
pub mod leader;
pub mod lower_bounds;
pub mod partition;
pub mod pipeline;
pub mod resilient;
pub mod textbook;
pub mod watchdog;

pub use broadcast::{partition_broadcast, BroadcastInput, BroadcastOutcome};
pub use partition::{EdgePartition, PartitionParams};
pub use textbook::textbook_broadcast;
pub use watchdog::{
    partition_broadcast_degrading, resilient_broadcast_degrading, watchdog, DegradeLog,
    DegradePolicy, SalvageAttempt, WatchdogMode, WatchdogReport,
};
