//! Tree convergecast: aggregates and distributed item numbering (Lemma 3).
//!
//! Both protocols run on a rooted spanning tree described per node by
//! `(parent_port, children_ports)` — exactly what [`crate::bfs`] outputs.
//!
//! * [`Aggregate`] folds an associative operation up the tree in
//!   `O(depth)` rounds and broadcasts the result back down, giving every
//!   node the global value (used for Lemma 4's "learn δ" and for the
//!   validity checks in the exponential-search broadcast).
//! * [`Numbering`] implements Lemma 3: with node `v` initially holding
//!   `x_v` items, it assigns the items globally consecutive ids in
//!   `[0, Σx_v)` in `O(depth)` rounds — each node learns the start of its
//!   own range. The broadcast algorithm uses this to number the `k`
//!   messages before splitting them across subgraphs.

use congest_graph::Port;
use congest_sim::{MsgBits, NodeCtx, PackedMsg, Protocol};

/// The rooted-tree view a node needs for convergecast protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeView {
    /// Port to the parent (`None` at the root).
    pub parent_port: Option<Port>,
    /// Ports to the children.
    pub children_ports: Vec<Port>,
}

impl TreeView {
    /// Extract the tree view from a BFS result.
    pub fn from_bfs(info: &crate::bfs::BfsNodeInfo) -> Self {
        TreeView {
            parent_port: info.parent_port,
            children_ports: info.children_ports.clone(),
        }
    }
}

/// Associative operations for [`Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    Sum,
    Min,
    Max,
}

impl AggOp {
    #[inline]
    fn fold(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Sum => a + b,
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
        }
    }
}

/// Up/down message for tree protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpDown {
    Up(u64),
    Down(u64),
}

impl MsgBits for UpDown {
    fn bits(&self) -> usize {
        1 + 64
    }
}

/// Bit budget: `tag(1) | value(64)` — the full-width aggregate value
/// pushes this to a `u128` word.
impl PackedMsg for UpDown {
    type Word = u128;
    const WIDTH: u32 = 65;
    #[inline]
    fn pack(self) -> u128 {
        match self {
            UpDown::Up(v) => (v as u128) << 1,
            UpDown::Down(v) => 1 | (v as u128) << 1,
        }
    }
    #[inline]
    fn unpack(word: u128) -> Self {
        let v = (word >> 1) as u64;
        if word & 1 == 0 {
            UpDown::Up(v)
        } else {
            UpDown::Down(v)
        }
    }
}

/// Convergecast an aggregate to the root, then broadcast it back down.
/// Every node outputs the global aggregate. `O(depth)` rounds each way.
pub struct Aggregate {
    tree: TreeView,
    op: AggOp,
    acc: u64,
    pending_children: usize,
    sent_up: bool,
    result: Option<u64>,
    forwarded_down: bool,
}

impl Aggregate {
    pub fn new(tree: TreeView, op: AggOp, local_value: u64) -> Self {
        let pending = tree.children_ports.len();
        Aggregate {
            tree,
            op,
            acc: local_value,
            pending_children: pending,
            sent_up: false,
            result: None,
            forwarded_down: false,
        }
    }
}

impl Protocol for Aggregate {
    type Msg = UpDown;
    type Output = u64;
    /// Convergecast transitions (`sent_up`, `forwarded_down`) fire at
    /// round 0 or in the round the triggering message arrives; with an
    /// empty inbox both guards are stable, so done rounds are no-ops.
    const QUIESCENT: bool = true;

    fn round(&mut self, ctx: &mut NodeCtx<'_, UpDown>) {
        for (_, msg) in ctx.inbox() {
            match msg {
                UpDown::Up(v) => {
                    self.acc = self.op.fold(self.acc, v);
                    self.pending_children -= 1;
                }
                UpDown::Down(v) => self.result = Some(v),
            }
        }
        if self.pending_children == 0 && !self.sent_up {
            self.sent_up = true;
            match self.tree.parent_port {
                Some(p) => ctx.send(p, UpDown::Up(self.acc)),
                None => self.result = Some(self.acc), // root
            }
        }
        if let (Some(r), false) = (self.result, self.forwarded_down) {
            self.forwarded_down = true;
            for &c in &self.tree.children_ports.clone() {
                ctx.send(c, UpDown::Down(r));
            }
        }
        ctx.set_done(true);
    }

    fn finish(self) -> u64 {
        self.result.expect("aggregate completed")
    }
}

/// Lemma 3 distributed numbering. Output per node: `(start, total)` — the
/// node's items get ids `start..start + x_v`, and `total = Σ x_v` (learned
/// for free, since the root's subtree count is the total and the down
/// phase can carry it alongside).
pub struct Numbering {
    tree: TreeView,
    x: u64,
    /// Subtree counts reported by children, aligned with `children_ports`.
    child_counts: Vec<Option<u64>>,
    sent_up: bool,
    assigned: Option<(u64, u64)>,
    forwarded_down: bool,
}

/// Numbering needs two counters downstream (range start + global total);
/// the up direction carries one. One message per edge per direction
/// overall. Counters are item counts, so 63 bits each is vastly more than
/// any instance can hold — which is what lets the whole message pack into
/// one `u128` wire word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumberingMsg {
    /// Subtree item count.
    Up(u64),
    /// `(range_start, global_total)` for the receiving child's subtree.
    Down(u64, u64),
}

impl MsgBits for NumberingMsg {
    fn bits(&self) -> usize {
        match self {
            NumberingMsg::Up(_) => 1 + 63,
            NumberingMsg::Down(..) => 1 + 126,
        }
    }
}

/// Bit budget: `tag(1) | start(63) | total(63)` (`Up` leaves the high
/// field zero). Counts ≥ 2^63 cannot arise — they would require 2^63
/// messages in flight — and `pack` asserts that in debug builds.
impl PackedMsg for NumberingMsg {
    type Word = u128;
    const WIDTH: u32 = 127;
    #[inline]
    fn pack(self) -> u128 {
        const LIMIT: u64 = 1 << 63;
        match self {
            NumberingMsg::Up(count) => {
                debug_assert!(count < LIMIT);
                (count as u128) << 1
            }
            NumberingMsg::Down(start, total) => {
                debug_assert!(start < LIMIT && total < LIMIT);
                1 | (start as u128) << 1 | (total as u128) << 64
            }
        }
    }
    #[inline]
    fn unpack(word: u128) -> Self {
        const MASK63: u128 = (1 << 63) - 1;
        if word & 1 == 0 {
            NumberingMsg::Up((word >> 1 & MASK63) as u64)
        } else {
            NumberingMsg::Down((word >> 1 & MASK63) as u64, (word >> 64 & MASK63) as u64)
        }
    }
}

impl Numbering {
    pub fn new(tree: TreeView, items: u64) -> Self {
        let k = tree.children_ports.len();
        Numbering {
            tree,
            x: items,
            child_counts: vec![None; k],
            sent_up: false,
            assigned: None,
            forwarded_down: false,
        }
    }

    fn subtree_total(&self) -> u64 {
        self.x
            + self
                .child_counts
                .iter()
                .map(|c| c.unwrap_or(0))
                .sum::<u64>()
    }
}

impl Protocol for Numbering {
    type Msg = NumberingMsg;
    type Output = (u64, u64);
    /// Same argument as [`Aggregate`]: `sent_up`/`forwarded_down` can
    /// only flip at round 0 or on message arrival, so a done round with
    /// an empty inbox reads nothing, sends nothing, mutates nothing.
    const QUIESCENT: bool = true;

    fn round(&mut self, ctx: &mut NodeCtx<'_, NumberingMsg>) {
        for (port, msg) in ctx.inbox() {
            match msg {
                NumberingMsg::Up(count) => {
                    let idx = self
                        .tree
                        .children_ports
                        .iter()
                        .position(|&c| c == port)
                        .expect("Up message must come from a child");
                    self.child_counts[idx] = Some(count);
                }
                NumberingMsg::Down(start, total) => {
                    self.assigned = Some((start, total));
                }
            }
        }
        let all_children_in = self.child_counts.iter().all(|c| c.is_some());
        if all_children_in && !self.sent_up {
            self.sent_up = true;
            let total = self.subtree_total();
            match self.tree.parent_port {
                Some(p) => ctx.send(p, NumberingMsg::Up(total)),
                None => self.assigned = Some((0, total)), // root starts at 0
            }
        }
        if let (Some((start, total)), false) = (self.assigned, self.forwarded_down) {
            self.forwarded_down = true;
            // Own items take [start, start + x); children follow in port
            // order, each child's subtree occupying a contiguous block.
            let mut cursor = start + self.x;
            for (i, &c) in self.tree.children_ports.clone().iter().enumerate() {
                let cnt = self.child_counts[i].expect("counts complete");
                ctx.send(c, NumberingMsg::Down(cursor, total));
                cursor += cnt;
            }
        }
        ctx.set_done(true);
    }

    fn finish(self) -> (u64, u64) {
        self.assigned.expect("numbering completed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsProtocol;
    use congest_graph::generators::{complete, cycle, path, torus2d};
    use congest_graph::Graph;
    use congest_sim::{run_protocol, EngineConfig};

    fn tree_views(g: &Graph, root: u32) -> Vec<TreeView> {
        run_protocol(g, |v, _| BfsProtocol::new(root, v), EngineConfig::default())
            .unwrap()
            .outputs
            .iter()
            .map(TreeView::from_bfs)
            .collect()
    }

    #[test]
    fn aggregate_sum_min_max() {
        let g = torus2d(4, 4);
        let views = tree_views(&g, 0);
        for (op, expect) in [
            (AggOp::Sum, (0..16u64).sum::<u64>()),
            (AggOp::Min, 0),
            (AggOp::Max, 15),
        ] {
            let out = run_protocol(
                &g,
                |v, _| Aggregate::new(views[v as usize].clone(), op, v as u64),
                EngineConfig::default(),
            )
            .unwrap();
            for v in 0..16 {
                assert_eq!(out.outputs[v], expect, "op {op:?} node {v}");
            }
        }
    }

    #[test]
    fn aggregate_rounds_linear_in_depth() {
        let g = path(10);
        let views = tree_views(&g, 0);
        let out = run_protocol(
            &g,
            |v, _| Aggregate::new(views[v as usize].clone(), AggOp::Sum, 1),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(out.outputs.iter().all(|&x| x == 10));
        // Depth 9 up + 9 down, small constant slack.
        assert!(
            out.stats.rounds <= 2 * 9 + 2,
            "rounds = {}",
            out.stats.rounds
        );
    }

    #[test]
    fn numbering_assigns_disjoint_covering_ranges() {
        for g in [path(7), cycle(8), torus2d(3, 5), complete(6)] {
            let views = tree_views(&g, 0);
            // Node v holds v % 3 items.
            let items = |v: usize| (v % 3) as u64;
            let out = run_protocol(
                &g,
                |v, _| Numbering::new(views[v as usize].clone(), items(v as usize)),
                EngineConfig::default(),
            )
            .unwrap();
            let total: u64 = (0..g.n()).map(items).sum();
            let mut covered = vec![false; total as usize];
            for v in 0..g.n() {
                let (start, t) = out.outputs[v];
                assert_eq!(t, total, "global total at node {v}");
                for id in start..start + items(v) {
                    assert!(!covered[id as usize], "id {id} double-assigned");
                    covered[id as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "ids must cover [0, total)");
        }
    }

    #[test]
    fn numbering_with_all_items_at_one_node() {
        let g = cycle(6);
        let views = tree_views(&g, 0);
        let out = run_protocol(
            &g,
            |v, _| Numbering::new(views[v as usize].clone(), if v == 3 { 42 } else { 0 }),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(out.outputs[3].0, 0);
        assert_eq!(out.outputs[3].1, 42);
    }

    #[test]
    fn leaf_only_tree_on_two_nodes() {
        let g = congest_graph::GraphBuilder::new(2)
            .edge(0, 1)
            .build()
            .unwrap();
        let views = tree_views(&g, 0);
        let out = run_protocol(
            &g,
            |v, _| Numbering::new(views[v as usize].clone(), 5),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(out.outputs[0], (0, 10));
        assert_eq!(out.outputs[1], (5, 10));
    }
}
