//! Pipelined tree broadcast (paper Lemma 1).
//!
//! Given a rooted spanning tree and `k` messages initially scattered over
//! the nodes, deliver all messages to all nodes in `O(depth + k)` rounds
//! with `O(k)` congestion per tree edge:
//!
//! 1. **Gather (up)**: every node streams its own and its subtree's
//!    messages to its parent, one per round per tree edge;
//! 2. **Broadcast (down)**: the root streams every message down the tree;
//!    internal nodes forward, one per round per child edge.
//!
//! The two directions overlap freely (full-duplex edges), which is what
//! makes the complexity `O(depth + k)` rather than `O(depth · k)`.
//!
//! The state machine is factored out as [`PipeCore`] so that
//! [`TreePipeline`] (one tree — the textbook baseline) and the
//! per-subgraph parallel version in [`crate::broadcast`] (λ′ trees at
//! once, Theorem 1) share identical logic.
//!
//! Delivery accounting uses order-independent checksums (xor + sum) rather
//! than storing every payload at every node, so large sweeps stay in
//! memory; tests on small graphs enable full recording.

use crate::convergecast::TreeView;
use congest_graph::Port;
use congest_sim::{MsgBits, NodeCtx, PackedMsg, Protocol};
use std::collections::VecDeque;

/// One broadcast message on the wire: a global id and its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeMsg {
    pub id: u32,
    pub payload: u64,
}

impl MsgBits for PipeMsg {
    fn bits(&self) -> usize {
        32 + 64
    }
}

/// Bit budget: `id(32) | payload(64)`.
impl PackedMsg for PipeMsg {
    type Word = u128;
    const WIDTH: u32 = 96;
    #[inline]
    fn pack(self) -> u128 {
        self.id as u128 | (self.payload as u128) << 32
    }
    #[inline]
    fn unpack(word: u128) -> Self {
        PipeMsg {
            id: word as u32,
            payload: (word >> 32) as u64,
        }
    }
}

/// What a node accumulated by the end of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeResult {
    /// Number of distinct messages delivered locally.
    pub delivered: u64,
    /// XOR of `payload ^ mix(id)` over delivered messages.
    pub xor_check: u64,
    /// Wrapping sum of `payload + mix(id)` over delivered messages.
    pub sum_check: u64,
    /// Full `(id, payload)` record, if recording was enabled.
    pub recorded: Option<Vec<(u32, u64)>>,
}

/// Order-independent fingerprint contribution of one message.
#[inline]
fn fingerprint(id: u32, payload: u64) -> u64 {
    congest_sim::rng::mix64(payload ^ congest_sim::rng::mix64(id as u64))
}

/// Expected checksums for a message set — compare against every node's
/// [`PipeResult`] to verify complete delivery.
pub fn expected_checksums<'a, I: IntoIterator<Item = &'a (u32, u64)>>(msgs: I) -> (u64, u64) {
    let mut x = 0u64;
    let mut s = 0u64;
    for &(id, payload) in msgs {
        let f = fingerprint(id, payload);
        x ^= f;
        s = s.wrapping_add(f);
    }
    (x, s)
}

/// The per-tree pipelined gather+broadcast state machine.
#[derive(Debug)]
pub struct PipeCore {
    tree: TreeView,
    /// Total messages this tree must deliver.
    k: u64,
    delivered: u64,
    xor_check: u64,
    sum_check: u64,
    recorded: Option<Vec<(u32, u64)>>,
    up_queue: VecDeque<PipeMsg>,
    down_queue: VecDeque<PipeMsg>,
}

impl PipeCore {
    /// `own` are the messages initially held at this node that belong to
    /// this tree. `record` retains full payload lists (tests only).
    pub fn new(tree: TreeView, k: u64, own: Vec<PipeMsg>, record: bool) -> Self {
        let mut core = PipeCore {
            tree,
            k,
            delivered: 0,
            xor_check: 0,
            sum_check: 0,
            recorded: record.then(Vec::new),
            up_queue: VecDeque::new(),
            down_queue: VecDeque::new(),
        };
        let is_root = core.tree.parent_port.is_none();
        for m in own {
            if is_root {
                // Root delivers its own messages immediately and seeds the
                // down stream with them.
                core.deliver(m);
                core.enqueue_down(m);
            } else {
                core.up_queue.push_back(m);
            }
        }
        core
    }

    #[inline]
    fn is_root(&self) -> bool {
        self.tree.parent_port.is_none()
    }

    fn deliver(&mut self, m: PipeMsg) {
        self.delivered += 1;
        let f = fingerprint(m.id, m.payload);
        self.xor_check ^= f;
        self.sum_check = self.sum_check.wrapping_add(f);
        if let Some(rec) = &mut self.recorded {
            rec.push((m.id, m.payload));
        }
    }

    fn enqueue_down(&mut self, m: PipeMsg) {
        if !self.tree.children_ports.is_empty() {
            self.down_queue.push_back(m);
        }
    }

    /// Process one arrived message. `port` must be a tree port of this
    /// core's tree.
    pub fn on_receive(&mut self, port: Port, m: PipeMsg) {
        if self.tree.parent_port == Some(port) {
            // Down stream: deliver locally, forward to children.
            self.deliver(m);
            self.enqueue_down(m);
        } else {
            debug_assert!(
                self.tree.children_ports.contains(&port),
                "pipeline message on non-tree port {port}"
            );
            if self.is_root() {
                self.deliver(m);
                self.enqueue_down(m);
            } else {
                self.up_queue.push_back(m);
            }
        }
    }

    /// What to transmit this round: at most one message up (to the parent)
    /// and one message down (replicated to every child port).
    pub fn emit(&mut self) -> (Option<PipeMsg>, Option<PipeMsg>) {
        let up = if self.is_root() {
            None
        } else {
            self.up_queue.pop_front()
        };
        let down = self.down_queue.pop_front();
        (up, down)
    }

    /// Nothing queued for transmission.
    pub fn quiescent(&self) -> bool {
        self.up_queue.is_empty() && self.down_queue.is_empty()
    }

    /// All `k` messages delivered and nothing left to send.
    pub fn complete(&self) -> bool {
        self.delivered >= self.k && self.quiescent()
    }

    pub fn tree(&self) -> &TreeView {
        &self.tree
    }

    pub fn into_result(self) -> PipeResult {
        PipeResult {
            delivered: self.delivered,
            xor_check: self.xor_check,
            sum_check: self.sum_check,
            recorded: self.recorded,
        }
    }
}

/// Lemma 1 as a standalone protocol on a single tree.
pub struct TreePipeline {
    core: PipeCore,
}

impl TreePipeline {
    pub fn new(tree: TreeView, k: u64, own: Vec<PipeMsg>, record: bool) -> Self {
        TreePipeline {
            core: PipeCore::new(tree, k, own, record),
        }
    }
}

impl Protocol for TreePipeline {
    type Msg = PipeMsg;
    type Output = PipeResult;

    fn round(&mut self, ctx: &mut NodeCtx<'_, PipeMsg>) {
        let arrivals: Vec<(Port, PipeMsg)> = ctx.inbox().collect();
        for (p, m) in arrivals {
            self.core.on_receive(p, m);
        }
        let (up, down) = self.core.emit();
        if let Some(m) = up {
            ctx.send(self.core.tree.parent_port.unwrap(), m);
        }
        if let Some(m) = down {
            for &c in &self.core.tree.children_ports.clone() {
                ctx.send(c, m);
            }
        }
        ctx.set_done(self.core.complete());
    }

    fn finish(self) -> PipeResult {
        self.core.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsProtocol;
    use congest_graph::generators::{complete, cycle, path, torus2d};
    use congest_graph::{Graph, Node};
    use congest_sim::{run_protocol, EngineConfig, RunStats};

    fn bfs_views(g: &Graph, root: Node) -> Vec<TreeView> {
        run_protocol(g, |v, _| BfsProtocol::new(root, v), EngineConfig::default())
            .unwrap()
            .outputs
            .iter()
            .map(TreeView::from_bfs)
            .collect()
    }

    /// Place message id i at node (i*7+3) mod n with payload mix(i).
    fn placements(n: usize, k: usize) -> Vec<Vec<PipeMsg>> {
        let mut per_node: Vec<Vec<PipeMsg>> = vec![Vec::new(); n];
        for i in 0..k {
            let v = (i * 7 + 3) % n;
            per_node[v].push(PipeMsg {
                id: i as u32,
                payload: congest_sim::rng::mix64(i as u64),
            });
        }
        per_node
    }

    fn run_pipeline(g: &Graph, k: usize) -> (Vec<PipeResult>, RunStats) {
        let views = bfs_views(g, 0);
        let own = placements(g.n(), k);
        let out = run_protocol(
            g,
            |v, _| {
                TreePipeline::new(
                    views[v as usize].clone(),
                    k as u64,
                    own[v as usize].clone(),
                    true,
                )
            },
            EngineConfig::default(),
        )
        .unwrap();
        (out.outputs, out.stats)
    }

    #[test]
    fn all_nodes_get_all_messages() {
        for g in [path(8), cycle(9), torus2d(4, 4), complete(7)] {
            let k = 13;
            let (results, _) = run_pipeline(&g, k);
            let all: Vec<(u32, u64)> = placements(g.n(), k)
                .into_iter()
                .flatten()
                .map(|m| (m.id, m.payload))
                .collect();
            let (ex, es) = expected_checksums(all.iter());
            for (v, r) in results.iter().enumerate() {
                assert_eq!(r.delivered, k as u64, "node {v}");
                assert_eq!((r.xor_check, r.sum_check), (ex, es), "node {v}");
                let mut rec = r.recorded.clone().unwrap();
                rec.sort_unstable();
                let mut want = all.clone();
                want.sort_unstable();
                assert_eq!(rec, want, "node {v} full record");
            }
        }
    }

    #[test]
    fn round_complexity_is_depth_plus_k() {
        // Path of length D with k messages: rounds must be O(D + k), not
        // O(D · k).
        let d = 20usize;
        let k = 30usize;
        let g = path(d + 1);
        let (_, stats) = run_pipeline(&g, k);
        let bound = 2 * (d as u64 + k as u64) + 4;
        assert!(
            stats.rounds <= bound,
            "rounds {} exceeds O(D+k) bound {bound}",
            stats.rounds
        );
        assert!(stats.rounds >= (d + k) as u64 / 2);
    }

    #[test]
    fn congestion_is_order_k() {
        let g = torus2d(4, 4);
        let k = 25;
        let (_, stats) = run_pipeline(&g, k);
        // Each tree edge carries ≤ k up + k down.
        assert!(
            stats.max_edge_congestion <= 2 * k as u64,
            "congestion {} > 2k",
            stats.max_edge_congestion
        );
    }

    #[test]
    fn zero_messages_terminate_immediately() {
        let g = cycle(5);
        let (results, stats) = run_pipeline(&g, 0);
        assert!(results.iter().all(|r| r.delivered == 0));
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn single_node_holds_everything() {
        // All k messages at one non-root node.
        let g = path(6);
        let views = bfs_views(&g, 0);
        let k = 9u64;
        let msgs: Vec<PipeMsg> = (0..k as u32)
            .map(|i| PipeMsg {
                id: i,
                payload: 1000 + i as u64,
            })
            .collect();
        let out = run_protocol(
            &g,
            |v, _| {
                let own = if v == 5 { msgs.clone() } else { Vec::new() };
                TreePipeline::new(views[v as usize].clone(), k, own, false)
            },
            EngineConfig::default(),
        )
        .unwrap();
        let pairs: Vec<(u32, u64)> = msgs.iter().map(|m| (m.id, m.payload)).collect();
        let (ex, es) = expected_checksums(pairs.iter());
        for r in &out.outputs {
            assert_eq!(r.delivered, k);
            assert_eq!((r.xor_check, r.sum_check), (ex, es));
        }
    }

    #[test]
    fn checksums_detect_missing_message() {
        let all = [(0u32, 5u64), (1, 6)];
        let partial = [(0u32, 5u64)];
        assert_ne!(
            expected_checksums(all.iter()),
            expected_checksums(partial.iter())
        );
    }
}
