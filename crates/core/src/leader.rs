//! Flood-max leader election.
//!
//! Lemma 1 (the pipelined broadcast) presupposes "a unique leader". The
//! classic flood-max algorithm elects the maximum id in `O(D)` rounds:
//! every node repeatedly forwards the largest id it has heard; when the
//! network quiesces, every node knows the global maximum and exactly one
//! node recognizes itself as leader.
//!
//! Message-driven: a node transmits only when its best-known id improves,
//! so total messages are `O(m · #improvements)` and rounds are `≤ D + 1`.

use congest_graph::Node;
use congest_sim::{NodeCtx, Protocol};

/// Per-node output of leader election.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderInfo {
    /// The elected leader (the maximum id in the connected component).
    pub leader: Node,
    /// Whether this node is the leader.
    pub is_leader: bool,
}

/// The flood-max protocol.
pub struct FloodMax {
    me: Node,
    best: Node,
    dirty: bool,
}

impl FloodMax {
    pub fn new(me: Node) -> Self {
        FloodMax {
            me,
            best: me,
            dirty: true,
        }
    }
}

impl Protocol for FloodMax {
    type Msg = u32;
    type Output = LeaderInfo;
    /// Message-driven: with an empty inbox nothing can improve `best`,
    /// `dirty` is false after the round-0 announcement, so a done round
    /// reads nothing, sends nothing, and mutates nothing — the wide
    /// kernel may skip it.
    const QUIESCENT: bool = true;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
        for (_, id) in ctx.inbox() {
            if id > self.best {
                self.best = id;
                self.dirty = true;
            }
        }
        if self.dirty {
            ctx.send_all(self.best);
            self.dirty = false;
        }
        ctx.set_done(true);
    }

    fn finish(self) -> LeaderInfo {
        LeaderInfo {
            leader: self.best,
            is_leader: self.best == self.me,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{cycle, path, torus2d};
    use congest_sim::{run_protocol, EngineConfig};

    #[test]
    fn everyone_agrees_on_max_id() {
        for g in [path(7), cycle(9), torus2d(4, 4)] {
            let out = run_protocol(&g, |v, _| FloodMax::new(v), EngineConfig::default()).unwrap();
            let n = g.n() as Node;
            for (v, info) in out.outputs.iter().enumerate() {
                assert_eq!(info.leader, n - 1, "node {v}");
                assert_eq!(info.is_leader, v as Node == n - 1);
            }
        }
    }

    #[test]
    fn rounds_bounded_by_diameter_plus_one() {
        let g = path(16); // max id sits at one end, D = 15
        let out = run_protocol(&g, |v, _| FloodMax::new(v), EngineConfig::default()).unwrap();
        assert!(out.stats.rounds <= 16, "rounds = {}", out.stats.rounds);
        assert!(out.stats.rounds >= 15);
    }

    #[test]
    fn disconnected_components_elect_separately() {
        let g = congest_graph::GraphBuilder::new(5)
            .edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        let out = run_protocol(&g, |v, _| FloodMax::new(v), EngineConfig::default()).unwrap();
        assert_eq!(out.outputs[0].leader, 1);
        assert_eq!(out.outputs[1].leader, 1);
        assert_eq!(out.outputs[2].leader, 3);
        assert_eq!(out.outputs[4].leader, 4);
        assert!(out.outputs[4].is_leader);
    }
}
