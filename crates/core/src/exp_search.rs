//! Broadcast **without knowing λ** (paper §1.1, Remark).
//!
//! The paper: *"Compute the decomposition of Theorem 2 with
//! λ̃ = δ, δ/2, δ/4, … until it yields a desired tree packing. … Checking
//! the validity of a tree packing takes O((n log n)/δ) rounds, as we just
//! need to verify whether each Gᵢ is a connected subgraph with diameter
//! O((n log n)/δ)."*
//!
//! Implementation: learn δ (Lemma 4), then iterate guesses λ̃. Each
//! iteration pays one partition round, a parallel per-class BFS, and an
//! `O(D)` distributed AND-convergecast that tells every node whether all
//! classes reached everyone. The first valid guess proceeds to the routing
//! phase. Total extra cost is a geometric sum dominated by the last
//! (successful) iteration — the `O(log(δ/λ))` factor the paper notes.

use crate::bfs::{BfsProtocol, SubgraphBfs};
use crate::broadcast::{BroadcastConfig, BroadcastInput, BroadcastOutcome, ParallelPipeline};
use crate::convergecast::{AggOp, Aggregate, Numbering, TreeView};
use crate::leader::FloodMax;
use crate::partition::{EdgePartitionProtocol, PartitionParams};
use crate::pipeline::{expected_checksums, PipeCore, PipeMsg};
use congest_graph::Graph;
use congest_sim::{EngineConfig, PhaseHost, PhaseLog};

/// Trace of the exponential search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpSearchReport {
    /// The δ learned distributedly.
    pub delta: usize,
    /// The guesses λ̃ tried, in order.
    pub tried: Vec<usize>,
    /// The accepted guess (last element of `tried`).
    pub accepted: usize,
    /// λ′ used for the final partition.
    pub num_subgraphs: usize,
}

/// Errors: only engine errors can escape — the search always terminates
/// because λ̃ = small enough eventually yields λ′ = 1 (one class = the
/// whole graph, which trivially spans).
pub type ExpSearchError = congest_sim::EngineError;

/// k-broadcast with no knowledge of λ. The whole search — shared
/// prologue plus every doubling iteration's partition/BFS/check — runs
/// on one phase host, so with a resident session the dozens of phases
/// reuse one preallocated engine.
pub fn exp_search_broadcast(
    g: &Graph,
    input: &BroadcastInput,
    cfg: &BroadcastConfig,
) -> Result<(BroadcastOutcome, ExpSearchReport), ExpSearchError> {
    let mut host = PhaseHost::new(g, cfg.phase_resident);
    let n = g.n();
    let k = input.k() as u64;
    let mut phases = PhaseLog::new();
    let engine = |p: u64| {
        EngineConfig::with_seed(congest_sim::rng::phase_seed(cfg.seed, 0xE59 + p))
            .max_rounds(cfg.max_rounds)
    };

    // Leader + BFS + learn δ + numbering (shared across iterations).
    let leaders = host.run(|v, _| FloodMax::new(v), engine(1))?;
    phases.record("leader-election", leaders.stats);
    let root = leaders.outputs()[0].leader;
    drop(leaders);

    let bfs = host.run(|v, _| BfsProtocol::new(root, v), engine(2))?;
    phases.record("bfs", bfs.stats);
    let views: Vec<TreeView> = bfs.outputs().iter().map(TreeView::from_bfs).collect();
    drop(bfs);

    let delta_run = host.run(
        |v, gr| Aggregate::new(views[v as usize].clone(), AggOp::Min, gr.degree(v) as u64),
        engine(3),
    )?;
    phases.record("learn-delta", delta_run.stats);
    let delta = delta_run.outputs()[0] as usize;
    drop(delta_run);

    let payloads = input.payloads_by_node(n);
    let numbering = host.run(
        |v, _| Numbering::new(views[v as usize].clone(), payloads[v as usize].len() as u64),
        engine(4),
    )?;
    phases.record("numbering", numbering.stats);
    let ids_by_node: Vec<Vec<u32>> = (0..n)
        .map(|v| {
            let (start, _) = numbering.outputs()[v];
            (0..payloads[v].len() as u64)
                .map(|j| (start + j) as u32)
                .collect()
        })
        .collect();
    drop(numbering);

    // Exponential search over λ̃.
    let mut tried = Vec::new();
    let mut lambda_tilde = delta.max(1);
    let mut iter = 0u64;
    loop {
        tried.push(lambda_tilde);
        let params =
            PartitionParams::from_lambda(n, lambda_tilde, crate::broadcast::DEFAULT_PARTITION_C);
        let lp = params.num_subgraphs;
        let part_seed = congest_sim::rng::phase_seed(cfg.seed, 0xA11CE + iter);

        let part = host.run(
            |v, gr| EdgePartitionProtocol::new(v, part_seed, lp, gr.degree(v)),
            engine(10 + 4 * iter),
        )?;
        phases.record(format!("partition(λ̃={lambda_tilde})"), part.stats);
        let port_colors = part.take_outputs();

        let sub_bfs_run = host.run(
            |v, _| SubgraphBfs::new(root, v, port_colors[v as usize].clone(), lp),
            engine(11 + 4 * iter),
        )?;
        phases.record(format!("subgraph-bfs(λ̃={lambda_tilde})"), sub_bfs_run.stats);
        let sub_bfs = sub_bfs_run.take_outputs();

        // Distributed validity check: AND over "all my classes reached me"
        // = Min over indicator bits, convergecast on the main BFS tree.
        let ok_local: Vec<u64> = (0..n)
            .map(|v| sub_bfs[v].iter().all(|i| i.reached) as u64)
            .collect();
        let check = host.run(
            |v, _| Aggregate::new(views[v as usize].clone(), AggOp::Min, ok_local[v as usize]),
            engine(12 + 4 * iter),
        )?;
        phases.record(format!("validity-check(λ̃={lambda_tilde})"), check.stats);
        let valid = check.outputs()[0] == 1;
        drop(check);

        if valid {
            // Routing phase, identical to Theorem 1's phase 6.
            let cap = k.max(1).div_ceil(lp as u64);
            let color_of_id = |id: u32| ((id as u64 / cap).min(lp as u64 - 1)) as usize;
            let mut k_per_class = vec![0u64; lp];
            for ids in &ids_by_node {
                for &id in ids {
                    k_per_class[color_of_id(id)] += 1;
                }
            }
            let routing = host.run(
                |v, _| {
                    let vi = v as usize;
                    let cores = (0..lp)
                        .map(|c| {
                            let own: Vec<PipeMsg> = ids_by_node[vi]
                                .iter()
                                .zip(payloads[vi].iter())
                                .filter(|(&id, _)| color_of_id(id) == c)
                                .map(|(&id, &payload)| PipeMsg { id, payload })
                                .collect();
                            PipeCore::new(
                                TreeView::from_bfs(&sub_bfs[vi][c]),
                                k_per_class[c],
                                own,
                                cfg.record_payloads,
                            )
                        })
                        .collect();
                    ParallelPipeline::new(cores)
                },
                engine(13 + 4 * iter),
            )?;
            phases.record("parallel-routing", routing.stats);
            let per_node = routing.take_outputs();

            let subgraph_heights: Vec<u32> = (0..lp)
                .map(|c| (0..n).map(|v| sub_bfs[v][c].depth).max().unwrap_or(0))
                .collect();
            let all_msgs: Vec<(u32, u64)> = (0..n)
                .flat_map(|v| {
                    ids_by_node[v]
                        .iter()
                        .zip(payloads[v].iter())
                        .map(|(&id, &p)| (id, p))
                        .collect::<Vec<_>>()
                })
                .collect();
            let expected = expected_checksums(all_msgs.iter());
            let stats = phases.total();
            let outcome = BroadcastOutcome {
                total_rounds: phases.total_rounds(),
                phases,
                stats,
                num_subgraphs: lp,
                subgraph_heights,
                per_node,
                expected,
                k,
            };
            let report = ExpSearchReport {
                delta,
                accepted: lambda_tilde,
                tried,
                num_subgraphs: lp,
            };
            return Ok((outcome, report));
        }

        // Halve and retry. λ̃ = 1 gives λ' = 1 = the whole graph, which
        // always spans (G connected), so the loop terminates.
        debug_assert!(lambda_tilde > 1, "λ̃ = 1 must always validate");
        lambda_tilde = (lambda_tilde / 2).max(1);
        iter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{clique_chain, complete, harary};

    #[test]
    fn finds_valid_partition_without_lambda() {
        let g = harary(8, 40);
        let input = BroadcastInput::random_spread(&g, 60, 3);
        let (out, report) =
            exp_search_broadcast(&g, &input, &BroadcastConfig::with_seed(5)).unwrap();
        assert!(out.all_delivered());
        assert_eq!(report.delta, 8);
        assert_eq!(report.tried[0], 8, "search starts at δ");
        assert_eq!(*report.tried.last().unwrap(), report.accepted);
    }

    #[test]
    fn search_descends_when_delta_exceeds_lambda() {
        // clique_chain: δ = 11 but λ = 2 — starting guess δ overshoots and
        // the search must halve at least once whenever the δ-guess yields
        // an invalid (non-spanning) partition. With ln n ≈ 3.6 the first
        // guess already clamps λ' small, so we mainly check it terminates
        // and delivers.
        let g = clique_chain(3, 12, 2);
        let input = BroadcastInput::random_spread(&g, 30, 1);
        let (out, report) =
            exp_search_broadcast(&g, &input, &BroadcastConfig::with_seed(21)).unwrap();
        assert!(out.all_delivered());
        assert_eq!(report.delta, 11);
        assert!(!report.tried.is_empty());
    }

    #[test]
    fn complete_graph_accepts_first_guess() {
        let g = complete(40);
        let input = BroadcastInput::one_per_node(&g);
        let (out, report) =
            exp_search_broadcast(&g, &input, &BroadcastConfig::with_seed(2)).unwrap();
        assert!(out.all_delivered());
        assert_eq!(report.tried.len(), 1, "K_40 should validate at λ̃ = δ");
    }
}
