//! Simulating the **broadcast congested clique** (paper §1.2).
//!
//! In the broadcast congested clique model \[DKO14\], every node per round
//! broadcasts one `O(log n)`-bit value that *all* other nodes receive. The
//! paper: *"we can broadcast k = Θ(n) messages in O((n log n)/λ) rounds.
//! In particular, … this immediately yields a simulation of one round of
//! the broadcast congested clique model"* — universally optimal up to the
//! log factor.
//!
//! [`simulate_bcc_round`] runs one BCC round (everyone's value reaches
//! everyone) through the real Theorem 1 broadcast; [`simulate_bcc`] chains
//! `T` rounds of a user-supplied BCC algorithm, where each node's next
//! value may depend on everything heard so far — which is exactly the BCC
//! computational model.

use crate::broadcast::{
    partition_broadcast_retrying_hosted, BroadcastConfig, BroadcastError, BroadcastInput,
};
use crate::partition::PartitionParams;
use congest_graph::{Graph, Node};
use congest_sim::{PhaseHost, PhaseLog};

/// One node's view after a BCC round: every node's broadcast value,
/// indexed by node id.
pub type BccView = Vec<u64>;

/// Outcome of simulating one or more BCC rounds.
#[derive(Debug, Clone)]
pub struct BccOutcome {
    /// CONGEST rounds spent per simulated BCC round.
    pub rounds_per_bcc_round: Vec<u64>,
    /// Total CONGEST rounds.
    pub total_rounds: u64,
    /// Full per-phase accounting.
    pub phases: PhaseLog,
    /// The final views (identical at every node; returned once).
    pub final_view: BccView,
}

/// Simulate one round of the broadcast congested clique: node `v`
/// contributes `values[v]`; afterwards every node knows all `n` values.
///
/// The payload packs `(v, value)` so receivers can index the view; values
/// must fit 32 bits (one `O(log n)`-bit word — the BCC contract).
pub fn simulate_bcc_round(
    g: &Graph,
    values: &[u32],
    lambda: usize,
    seed: u64,
) -> Result<(BccView, u64, PhaseLog), BroadcastError> {
    let mut host = PhaseHost::resident(g);
    simulate_bcc_round_hosted(&mut host, values, lambda, seed)
}

/// [`simulate_bcc_round`] on a caller-provided engine host, so chained
/// BCC rounds reuse one preallocated engine.
pub fn simulate_bcc_round_hosted(
    host: &mut PhaseHost<'_>,
    values: &[u32],
    lambda: usize,
    seed: u64,
) -> Result<(BccView, u64, PhaseLog), BroadcastError> {
    let n = host.graph().n();
    assert_eq!(values.len(), n);
    let input = BroadcastInput {
        messages: (0..n as Node)
            .map(|v| (v, ((v as u64) << 32) | values[v as usize] as u64))
            .collect(),
    };
    let params = PartitionParams::from_lambda(n, lambda, crate::broadcast::DEFAULT_PARTITION_C);
    let (out, _) = partition_broadcast_retrying_hosted(
        host,
        &input,
        params,
        &BroadcastConfig::with_seed(seed),
        20,
    )?;
    debug_assert!(out.all_delivered());
    // Reconstruct the view every node now holds (identical everywhere by
    // the delivery guarantee, so computed once from the input).
    let mut view = vec![0u64; n];
    for &(v, payload) in &input.messages {
        view[v as usize] = payload & 0xFFFF_FFFF;
    }
    let mut phases = PhaseLog::new();
    for (name, st) in out.phases.phases() {
        phases.record(name.to_string(), *st);
    }
    Ok((view, out.total_rounds, phases))
}

/// Simulate `T` rounds of a BCC algorithm: `step(v, round, view)` returns
/// node `v`'s next broadcast value given the previous round's full view
/// (round 0 receives the initial values as the "view" of themselves only).
pub fn simulate_bcc<F>(
    g: &Graph,
    initial: &[u32],
    lambda: usize,
    rounds: usize,
    seed: u64,
    mut step: F,
) -> Result<BccOutcome, BroadcastError>
where
    F: FnMut(Node, usize, &BccView) -> u32,
{
    let n = g.n();
    // One resident engine serves every broadcast of every BCC round.
    let mut host = PhaseHost::resident(g);
    let mut values: Vec<u32> = initial.to_vec();
    let mut phases = PhaseLog::new();
    let mut per_round = Vec::with_capacity(rounds);
    let mut view: BccView = initial.iter().map(|&x| x as u64).collect();
    for t in 0..rounds {
        let (new_view, cost, round_phases) = simulate_bcc_round_hosted(
            &mut host,
            &values,
            lambda,
            seed.wrapping_add(t as u64 * 0x9E37),
        )?;
        view = new_view;
        per_round.push(cost);
        for (name, st) in round_phases.phases() {
            phases.record(format!("bcc[{t}] {name}"), *st);
        }
        values = (0..n as Node).map(|v| step(v, t, &view)).collect();
    }
    Ok(BccOutcome {
        total_rounds: per_round.iter().sum(),
        rounds_per_bcc_round: per_round,
        phases,
        final_view: view,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{complete, harary};

    #[test]
    fn one_bcc_round_spreads_all_values() {
        let g = harary(16, 64);
        let values: Vec<u32> = (0..64).map(|v| v * v + 1).collect();
        let (view, cost, _) = simulate_bcc_round(&g, &values, 16, 7).unwrap();
        for v in 0..64usize {
            assert_eq!(view[v], (values[v]) as u64);
        }
        assert!(cost > 0);
    }

    #[test]
    fn multi_round_bcc_computes_global_max_in_one_step() {
        // Classic BCC warm-up: after one exchange everyone knows the max.
        let g = harary(16, 48);
        let initial: Vec<u32> = (0..48).map(|v| (v * 37) % 101).collect();
        let expected_max = *initial.iter().max().unwrap();
        let out = simulate_bcc(&g, &initial, 16, 2, 3, |_, _, view| {
            view.iter().map(|&x| x as u32).max().unwrap()
        })
        .unwrap();
        assert_eq!(out.rounds_per_bcc_round.len(), 2);
        // After round 0 everyone broadcast the max; round 1's view is all-max.
        assert!(out.final_view.iter().all(|&x| x == expected_max as u64));
    }

    #[test]
    fn bcc_cost_scales_inverse_with_lambda() {
        let values: Vec<u32> = (0..96).collect();
        let (_, thin, _) = simulate_bcc_round(&harary(8, 96), &values, 8, 5).unwrap();
        let (_, fat, _) = simulate_bcc_round(&complete(96), &values, 95, 5).unwrap();
        assert!(
            fat < thin,
            "the clique (λ=95) must simulate BCC faster than λ=8: {fat} vs {thin}"
        );
    }
}
