//! Property-based tests for the core protocols: BFS, numbering, pipeline,
//! and partition invariants on arbitrary connected graphs.

use congest_core::bfs::BfsProtocol;
use congest_core::convergecast::{AggOp, Aggregate, Numbering, TreeView};
use congest_core::partition::{EdgePartition, EdgePartitionProtocol, PartitionParams};
use congest_core::pipeline::{expected_checksums, PipeMsg, TreePipeline};
use congest_graph::{Graph, GraphBuilder, Node};
use congest_sim::{run_protocol, EngineConfig};
use proptest::prelude::*;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for i in 0..(3 * n) as u64 {
            let u = (mix(seed ^ (i << 17)) % n as u64) as u32;
            let v = (mix(seed ^ (i << 18) ^ 99) % n as u64) as u32;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

fn bfs_views(g: &Graph, root: Node) -> Vec<TreeView> {
    run_protocol(g, |v, _| BfsProtocol::new(root, v), EngineConfig::default())
        .unwrap()
        .outputs
        .iter()
        .map(TreeView::from_bfs)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Distributed numbering assigns disjoint covering ranges whatever the
    /// item distribution.
    #[test]
    fn numbering_is_a_bijection(
        g in arb_connected_graph(20),
        items_seed in any::<u64>(),
    ) {
        let views = bfs_views(&g, 0);
        let items = |v: usize| ((items_seed >> (v % 32)) & 3) as u64;
        let out = run_protocol(
            &g,
            |v, _| Numbering::new(views[v as usize].clone(), items(v as usize)),
            EngineConfig::default(),
        )
        .unwrap();
        let total: u64 = (0..g.n()).map(items).sum();
        let mut covered = vec![false; total as usize];
        for v in 0..g.n() {
            let (start, t) = out.outputs[v];
            prop_assert_eq!(t, total);
            for id in start..start + items(v) {
                prop_assert!(!covered[id as usize]);
                covered[id as usize] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// The pipelined broadcast delivers every message to every node on
    /// arbitrary trees (built by BFS from arbitrary roots).
    #[test]
    fn pipeline_delivers_everywhere(
        g in arb_connected_graph(16),
        root_pick in any::<u32>(),
        k in 1usize..30,
    ) {
        let root = root_pick % g.n() as u32;
        let views = bfs_views(&g, root);
        let msgs: Vec<(u32, u64)> = (0..k as u32).map(|i| (i, 0xD00 + i as u64)).collect();
        let holder = |i: usize| (i * 13 + 5) % g.n();
        let out = run_protocol(
            &g,
            |v, _| {
                let own: Vec<PipeMsg> = msgs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| holder(*i) == v as usize)
                    .map(|(_, &(id, payload))| PipeMsg { id, payload })
                    .collect();
                TreePipeline::new(views[v as usize].clone(), k as u64, own, false)
            },
            EngineConfig::default(),
        )
        .unwrap();
        let (ex, es) = expected_checksums(msgs.iter());
        for r in &out.outputs {
            prop_assert_eq!(r.delivered, k as u64);
            prop_assert_eq!((r.xor_check, r.sum_check), (ex, es));
        }
        // Lemma 1's congestion claim.
        prop_assert!(out.stats.max_edge_congestion <= 2 * k as u64);
    }

    /// Aggregates over distributed BFS trees compute exactly the global
    /// fold for arbitrary values.
    #[test]
    fn aggregate_exactness(g in arb_connected_graph(18), vals_seed in any::<u64>()) {
        let views = bfs_views(&g, 0);
        let val = |v: usize| (vals_seed.rotate_left(v as u32 % 64)) & 0xFFFF;
        for (op, fold) in [
            (AggOp::Sum, (0..g.n()).map(val).sum::<u64>()),
            (AggOp::Min, (0..g.n()).map(val).min().unwrap()),
            (AggOp::Max, (0..g.n()).map(val).max().unwrap()),
        ] {
            let out = run_protocol(
                &g,
                |v, _| Aggregate::new(views[v as usize].clone(), op, val(v as usize)),
                EngineConfig::default(),
            )
            .unwrap();
            for &x in &out.outputs {
                prop_assert_eq!(x, fold);
            }
        }
    }

    /// The distributed one-round partition protocol matches the
    /// centralized mirror on every port of every node.
    #[test]
    fn partition_protocol_matches_mirror(
        g in arb_connected_graph(16),
        seed in any::<u64>(),
        lp in 1usize..5,
    ) {
        let central = EdgePartition::compute(&g, PartitionParams::explicit(lp), seed);
        let out = run_protocol(
            &g,
            |v, gr| EdgePartitionProtocol::new(v, seed, lp, gr.degree(v)),
            EngineConfig::default(),
        )
        .unwrap();
        prop_assert!(out.stats.rounds <= 1);
        for v in 0..g.n() as Node {
            prop_assert_eq!(&out.outputs[v as usize], &central.port_colors(&g, v));
        }
    }
}
