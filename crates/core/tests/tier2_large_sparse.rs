//! Tier-2 scale smoke tests over the `large_sparse` generator preset
//! (bounded degree 6, δ = λ = 6, diameter `O(n^{1/3})`).
//!
//! These are `#[ignore]`d: they run minutes-scale workloads meant for
//! `cargo test --release -- --ignored` (or the CI tier-2 lane), not the
//! tier-1 suite.

use congest_core::broadcast::{partition_broadcast, BroadcastInput};
use congest_graph::generators::large_sparse;
use congest_sim::{run_protocol, EngineConfig, NodeCtx, Protocol};

/// Message-driven flood from node 0.
struct Flood {
    informed: bool,
    relayed: bool,
}

impl Protocol for Flood {
    type Msg = ();
    type Output = bool;
    fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
        if ctx.round == 0 && ctx.node == 0 {
            self.informed = true;
        }
        if ctx.inbox_len() > 0 {
            self.informed = true;
        }
        if self.informed && !self.relayed {
            ctx.send_all(());
            self.relayed = true;
        }
        ctx.set_done(self.relayed);
    }
    fn finish(self) -> bool {
        self.informed
    }
}

#[test]
#[ignore = "tier-2 scale smoke: ~10^6 nodes, run with --release -- --ignored"]
fn flood_broadcast_covers_a_million_node_large_sparse() {
    let n = 1_000_000;
    let g = large_sparse(n);
    assert_eq!(g.max_degree(), 6);
    let out = run_protocol(
        &g,
        |_, _| Flood {
            informed: false,
            relayed: false,
        },
        EngineConfig::with_seed(7).max_rounds(5_000),
    )
    .expect("flood must terminate within the diameter bound");
    assert!(out.outputs.iter().all(|&x| x), "every node informed");
    // Diameter is O(n^{1/3}) ≈ 150 for n = 10^6; leave generous slack.
    assert!(
        out.stats.rounds <= 1_000,
        "diameter-bound broadcast took {} rounds",
        out.stats.rounds
    );
    assert!(
        out.stats.total_messages as usize >= n,
        "flood reached everyone"
    );
}

#[test]
#[ignore = "tier-2 scale smoke: Theorem 1 broadcast at 2·10^5 nodes, run with --release -- --ignored"]
fn partition_broadcast_over_large_sparse() {
    let g = large_sparse(200_000);
    let input = BroadcastInput::at_single_node(&g, 0, 8);
    let out = partition_broadcast(&g, &input, 6, 42).expect("broadcast completes");
    assert!(out.all_delivered(), "all 8 messages at every node");
}
