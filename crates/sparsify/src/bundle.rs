//! t-bundle spanners: the union of `t` iteratively peeled spanners.
//!
//! A *t-bundle* of `G` is `B = S₁ ∪ … ∪ S_t` where `Sⱼ` is a spanner of
//! `G ∖ (S₁ ∪ … ∪ S_{j−1})`. Koutis–Xu's key property: every off-bundle
//! edge closes `t` short cycles through distinct spanner layers, so it is
//! "well connected" and survives aggressive sampling. We peel with
//! Baswana–Sen at `k = ⌈log₂ n⌉` (stretch `O(log n)`, size `Õ(n)` per
//! layer).

use crate::koutis_xu::SparseEdge;
use congest_apsp::baswana_sen::baswana_sen_spanner;
use congest_graph::{GraphBuilder, WeightedGraph};

/// Split `edges` into `(bundle, rest)` where `bundle` is a t-bundle of the
/// multiset of edges (all on node set `0..n`).
///
/// `edges` must be canonically sorted by `(u, v)` and duplicate-free — the
/// invariant every caller in this crate maintains — so that rebuilt edge
/// ids index `edges` directly.
pub fn t_bundle(
    n: usize,
    edges: &[SparseEdge],
    t: usize,
    k: usize,
    seed: u64,
) -> (Vec<SparseEdge>, Vec<SparseEdge>) {
    debug_assert!(edges
        .windows(2)
        .all(|w| (w[0].u, w[0].v) < (w[1].u, w[1].v)));
    let mut active: Vec<SparseEdge> = edges.to_vec();
    let mut bundle: Vec<SparseEdge> = Vec::new();
    for layer in 0..t {
        if active.is_empty() {
            break;
        }
        // Build the weighted view; sorted+unique input ⇒ id i = index i.
        let g = GraphBuilder::new(n)
            .edges(active.iter().map(|e| (e.u, e.v)))
            .build()
            .expect("unique sorted pairs");
        let w: Vec<f64> = active.iter().map(|e| e.weight()).collect();
        let wg = WeightedGraph::new(g, w);
        let spanner = baswana_sen_spanner(&wg, k, seed ^ ((layer as u64) << 40));
        let mut in_spanner = vec![false; active.len()];
        for &e in &spanner.edges {
            in_spanner[e as usize] = true;
        }
        let mut next_active = Vec::with_capacity(active.len() - spanner.edges.len());
        for (i, e) in active.into_iter().enumerate() {
            if in_spanner[i] {
                bundle.push(e);
            } else {
                next_active.push(e);
            }
        }
        active = next_active;
    }
    bundle.sort_unstable_by_key(|e| (e.u, e.v));
    (bundle, active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::koutis_xu::SparseEdge;
    use congest_graph::generators::complete;

    fn unit_edges(g: &congest_graph::Graph) -> Vec<SparseEdge> {
        g.edge_list()
            .map(|(_, u, v)| SparseEdge {
                u,
                v,
                base_w: 1.0,
                scale_pow4: 0,
            })
            .collect()
    }

    #[test]
    fn bundle_plus_rest_is_a_partition() {
        let g = complete(20);
        let edges = unit_edges(&g);
        let (bundle, rest) = t_bundle(20, &edges, 3, 2, 7);
        assert_eq!(bundle.len() + rest.len(), edges.len());
        let mut all: Vec<(u32, u32)> = bundle
            .iter()
            .chain(rest.iter())
            .map(|e| (e.u, e.v))
            .collect();
        all.sort_unstable();
        let orig: Vec<(u32, u32)> = edges.iter().map(|e| (e.u, e.v)).collect();
        assert_eq!(all, orig);
    }

    #[test]
    fn more_layers_bundle_more_edges() {
        let g = complete(24);
        let edges = unit_edges(&g);
        let (b1, _) = t_bundle(24, &edges, 1, 2, 3);
        let (b3, _) = t_bundle(24, &edges, 3, 2, 3);
        assert!(b3.len() > b1.len());
    }

    #[test]
    fn bundle_layers_keep_graph_connected() {
        // Even one spanner layer must keep the node set connected.
        let g = complete(16);
        let edges = unit_edges(&g);
        let (bundle, _) = t_bundle(16, &edges, 1, 3, 5);
        let bg = GraphBuilder::new(16)
            .edges(bundle.iter().map(|e| (e.u, e.v)))
            .build()
            .unwrap();
        assert!(congest_graph::algo::components::is_connected(&bg));
    }

    #[test]
    fn exhausting_the_graph_leaves_empty_rest() {
        let g = complete(8); // 28 edges; many layers exhaust it
        let edges = unit_edges(&g);
        let (bundle, rest) = t_bundle(8, &edges, 30, 2, 1);
        assert!(rest.is_empty());
        assert_eq!(bundle.len(), 28);
    }
}
