//! Cut-quality evaluation and the full Theorem 7 driver.
//!
//! Theorem 7: broadcast the sparsifier (Õ(n/ε²) messages through the real
//! Theorem 1 broadcast ⇒ Õ(n/(λε²)) rounds), after which every node can
//! estimate **all** cut values locally. This module measures how good
//! those estimates are: random bisections, all singleton cuts, BFS-ball
//! cuts, and the global min cut (Stoer–Wagner on both graphs).

use crate::koutis_xu::{koutis_xu_sparsifier, SparsifierResult};
use congest_core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastError, BroadcastInput,
};
use congest_core::partition::PartitionParams;
use congest_graph::algo::stoer_wagner::stoer_wagner_min_cut;
use congest_graph::{Node, WeightedGraph};
use congest_sim::rng::mix64;
use congest_sim::PhaseLog;

/// How well the sparsifier preserves cuts.
#[derive(Debug, Clone)]
pub struct CutQualityReport {
    /// Number of cuts evaluated.
    pub num_cuts: usize,
    /// max |w_H(S) − w_G(S)| / w_G(S).
    pub max_rel_error: f64,
    /// mean relative error.
    pub mean_rel_error: f64,
    /// Global min cut of `G` (Stoer–Wagner).
    pub min_cut_g: f64,
    /// Global min cut of `H`.
    pub min_cut_h: f64,
}

impl CutQualityReport {
    /// The empirical ε: the largest observed relative deviation, including
    /// the min-cut comparison.
    pub fn empirical_eps(&self) -> f64 {
        let mc = if self.min_cut_g > 0.0 {
            (self.min_cut_h - self.min_cut_g).abs() / self.min_cut_g
        } else {
            0.0
        };
        self.max_rel_error.max(mc)
    }
}

/// Evaluate cut preservation between `g` and a sparsifier over
/// `num_random` random bisections + all singleton cuts + BFS-ball cuts.
pub fn evaluate_cuts(
    g: &WeightedGraph,
    h: &SparsifierResult,
    num_random: usize,
    seed: u64,
) -> CutQualityReport {
    let n = g.n();
    assert!(n >= 2);
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut eval = |in_s: &[bool]| {
        let wg = g.cut_weight(in_s);
        if wg <= 0.0 {
            return;
        }
        let wh = h.cut_weight(in_s);
        let rel = (wh - wg).abs() / wg;
        worst = worst.max(rel);
        sum += rel;
        count += 1;
    };

    // Random bisections.
    for i in 0..num_random {
        let mut in_s = vec![false; n];
        for (v, b) in in_s.iter_mut().enumerate() {
            let h64 = mix64(seed ^ mix64(((i as u64) << 32) | v as u64));
            *b = h64 & 1 == 1;
        }
        if in_s.iter().any(|&x| x) && in_s.iter().any(|&x| !x) {
            eval(&in_s);
        }
    }
    // Singleton cuts (= weighted degrees).
    for v in 0..n {
        let mut in_s = vec![false; n];
        in_s[v] = true;
        eval(&in_s);
    }
    // BFS-ball cuts of a few radii from a few sources.
    let dist0 = congest_graph::algo::bfs::bfs_distances(g.graph(), 0);
    let max_d = dist0
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0);
    for r in 1..max_d {
        let in_s: Vec<bool> = dist0.iter().map(|&d| d <= r).collect();
        if in_s.iter().any(|&x| !x) {
            eval(&in_s);
        }
    }

    let hg = h.as_weighted_graph();
    let min_cut_g = stoer_wagner_min_cut(g).map(|(w, _)| w).unwrap_or(0.0);
    let min_cut_h = stoer_wagner_min_cut(&hg).map(|(w, _)| w).unwrap_or(0.0);

    CutQualityReport {
        num_cuts: count,
        max_rel_error: worst,
        mean_rel_error: if count > 0 { sum / count as f64 } else { 0.0 },
        min_cut_g,
        min_cut_h,
    }
}

/// Outcome of the full Theorem 7 pipeline.
#[derive(Debug, Clone)]
pub struct AllCutsOutcome {
    pub sparsifier_edges: usize,
    pub quality: CutQualityReport,
    pub phases: PhaseLog,
    pub total_rounds: u64,
}

/// Theorem 7 end to end: sparsify, broadcast the sparsifier with the real
/// Theorem 1 broadcast, measure cut quality.
pub fn theorem7_all_cuts(
    g: &WeightedGraph,
    eps: f64,
    lambda: usize,
    seed: u64,
) -> Result<AllCutsOutcome, BroadcastError> {
    let n = g.n();
    let mut phases = PhaseLog::new();

    // 1. Sparsifier (local computation in KX16's distributed version is
    //    Õ(1/ε²) rounds of spanner constructions; charged here).
    let sp = koutis_xu_sparsifier(g, eps, seed);
    phases.record(
        "koutis-xu (charged)",
        congest_sim::RunStats {
            rounds: (sp.t * sp.iterations.max(1)) as u64,
            iterations: (sp.t * sp.iterations.max(1)) as u64,
            ..Default::default()
        },
    );

    // 2. Broadcast every sparsifier edge: payload (u:20, v:20, j:4, base).
    let input = BroadcastInput {
        messages: sp
            .edges
            .iter()
            .map(|e| {
                let holder = e.u.max(e.v);
                (holder, pack_sparse_edge(e.u, e.v, e.base_w, e.scale_pow4))
            })
            .collect(),
    };
    let params =
        PartitionParams::from_lambda(n, lambda, congest_core::broadcast::DEFAULT_PARTITION_C);
    // The broadcast (and its retries) runs all six Theorem 1 phases on
    // one resident engine session (`BroadcastConfig::phase_resident`).
    let (bc, _) = partition_broadcast_retrying(
        g.graph(),
        &input,
        params,
        &BroadcastConfig::with_seed(seed ^ 0xC7),
        20,
    )?;
    debug_assert!(bc.all_delivered());
    for (name, st) in bc.phases.phases() {
        phases.record(format!("broadcast-sparsifier: {name}"), *st);
    }

    // 3. Quality measurement (what every node could now do locally).
    let quality = evaluate_cuts(g, &sp, 64, seed ^ EVAL_SEED);

    let total_rounds = phases.total_rounds();
    Ok(AllCutsOutcome {
        sparsifier_edges: sp.size(),
        quality,
        phases,
        total_rounds,
    })
}

const EVAL_SEED: u64 = 0xE7A1;

/// Pack a sparsifier edge into one broadcast payload word:
/// `u:20 | v:20 | scale_pow4:8 | base_w:16`.
pub fn pack_sparse_edge(u: Node, v: Node, base_w: f64, scale: u8) -> u64 {
    assert!(u < (1 << 20) && v < (1 << 20), "node ids must fit 20 bits");
    let wi = base_w as u64;
    assert!(
        wi < (1 << 16) && (wi as f64 - base_w).abs() < 1e-9,
        "base weights must be integers < 65536"
    );
    ((u as u64) << 44) | ((v as u64) << 24) | ((scale as u64) << 16) | wi
}

/// Inverse of [`pack_sparse_edge`].
pub fn unpack_sparse_edge(p: u64) -> (Node, Node, f64, u8) {
    (
        (p >> 44) as Node,
        ((p >> 24) & 0xF_FFFF) as Node,
        (p & 0xFFFF) as f64,
        ((p >> 16) & 0xFF) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::koutis_xu::koutis_xu_unit;
    use congest_graph::generators::{complete, harary};

    #[test]
    fn pack_roundtrip() {
        let (u, v, w, s) = unpack_sparse_edge(pack_sparse_edge(1000, 65535, 123.0, 7));
        assert_eq!((u, v, w, s), (1000, 65535, 123.0, 7));
    }

    #[test]
    fn pass_through_sparsifier_has_zero_error() {
        // Small graph ⇒ sparsifier = graph ⇒ all cuts exact.
        let g = harary(4, 20);
        let sp = koutis_xu_unit(&g, 0.3, 1);
        let report = evaluate_cuts(&WeightedGraph::unit(g), &sp, 32, 5);
        assert_eq!(report.max_rel_error, 0.0);
        assert_eq!(report.min_cut_g, report.min_cut_h);
        assert!(report.num_cuts > 0);
    }

    #[test]
    fn dense_graph_cuts_concentrate() {
        let g = complete(96);
        let sp = koutis_xu_unit(&g, 0.5, 3);
        let report = evaluate_cuts(&WeightedGraph::unit(g), &sp, 48, 9);
        // Random bisections of K_96 cut ~2300 edges; sampling noise should
        // land well within 50%. This is the *measured* ε of E9.
        assert!(
            report.max_rel_error < 0.5,
            "max relative error {} too large",
            report.max_rel_error
        );
        assert!(report.mean_rel_error <= report.max_rel_error);
    }

    #[test]
    fn theorem7_pipeline_runs() {
        let g = WeightedGraph::unit(harary(10, 60));
        let out = theorem7_all_cuts(&g, 0.5, 10, 7).unwrap();
        assert!(out.total_rounds > 0);
        assert!(out.sparsifier_edges > 0);
        let names: Vec<&str> = out.phases.phases().map(|(n, _)| n).collect();
        assert!(names.iter().any(|n| n.contains("koutis-xu")));
        assert!(names.iter().any(|n| n.contains("broadcast-sparsifier")));
        assert!(out.quality.empirical_eps() < 1.0);
    }
}
