//! The iterated Koutis–Xu sparsification scheme \[KX16\].
//!
//! Each iteration: (1) peel a t-bundle `B` of the current graph and move
//! it into the sparsifier; (2) keep each off-bundle edge with probability
//! 1/4 at 4× its weight; (3) recurse on the survivors. Edge counts drop
//! geometrically, so `O(log m)` iterations reach a graph small enough to
//! absorb whole.
//!
//! Every cut is preserved **in expectation exactly** at each step (an
//! off-bundle edge contributes `w` in expectation: `(1/4)·4w`); KX16 prove
//! concentration — spectrally, with `t = O(log² n/ε²)` — while we run the
//! cut-oriented instantiation with `t = Θ(log n/ε²)` and *measure* the
//! `(1±ε)` cut bound (experiment E9; substitution documented in
//! DESIGN.md §2).
//!
//! Weights on the wire: every edge's weight is `base_w · 4^j` with `j` the
//! number of samplings survived, so the broadcast payload packs
//! `(u, v, base_w, j)` in one 64-bit word — constant `O(log n)`-bit
//! messages as Theorem 7 requires.

use crate::bundle::t_bundle;
use congest_graph::{Graph, GraphBuilder, Node, WeightedGraph};
use congest_sim::rng::mix64;

/// One sparsifier edge: weight = `base_w · 4^scale_pow4`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseEdge {
    pub u: Node,
    pub v: Node,
    pub base_w: f64,
    pub scale_pow4: u8,
}

impl SparseEdge {
    #[inline]
    pub fn weight(&self) -> f64 {
        self.base_w * 4f64.powi(self.scale_pow4 as i32)
    }
}

/// The sparsifier and its construction trace.
#[derive(Debug, Clone)]
pub struct SparsifierResult {
    pub n: usize,
    pub edges: Vec<SparseEdge>,
    /// Bundle width used.
    pub t: usize,
    /// Iterations executed.
    pub iterations: usize,
}

impl SparsifierResult {
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Materialize as a weighted graph on the same node set.
    pub fn as_weighted_graph(&self) -> WeightedGraph {
        let g = GraphBuilder::new(self.n)
            .edges(self.edges.iter().map(|e| (e.u, e.v)))
            .build()
            .expect("sparsifier edges are unique");
        // Builder assigns ids in canonical order; our edges are kept
        // sorted, so weights align index-for-index.
        let w = self.edges.iter().map(|e| e.weight()).collect();
        WeightedGraph::new(g, w)
    }

    /// Weight of the cut `(S, V∖S)` in the sparsifier.
    pub fn cut_weight(&self, in_s: &[bool]) -> f64 {
        self.edges
            .iter()
            .filter(|e| in_s[e.u as usize] != in_s[e.v as usize])
            .map(|e| e.weight())
            .sum()
    }
}

/// The bundle width `t = Θ(log n/ε²)` for the cut instantiation.
pub fn bundle_width(n: usize, eps: f64) -> usize {
    assert!(eps > 0.0 && eps <= 1.0);
    ((0.5 * (n.max(2) as f64).ln() / (eps * eps)).ceil() as usize).max(1)
}

/// Build a Koutis–Xu sparsifier of a weighted graph.
pub fn koutis_xu_sparsifier(g: &WeightedGraph, eps: f64, seed: u64) -> SparsifierResult {
    let n = g.n();
    let t = bundle_width(n, eps);
    let k = ((n.max(4) as f64).log2().ceil() as usize).max(2);
    // Invariant: `active` canonically sorted & duplicate-free.
    let mut active: Vec<SparseEdge> = g
        .graph()
        .edge_list()
        .map(|(e, u, v)| SparseEdge {
            u,
            v,
            base_w: g.weight(e),
            scale_pow4: 0,
        })
        .collect();
    let mut out: Vec<SparseEdge> = Vec::new();
    // Stop when the remainder is small enough to keep whole: the bundle
    // itself costs ~t·n·log n edges, so anything below that is free.
    let floor = 4 * n;
    let max_iters = (g.m().max(2) as f64).log2().ceil() as usize + 2;
    let mut iterations = 0;
    for it in 0..max_iters {
        if active.len() <= floor {
            break;
        }
        iterations = it + 1;
        let (bundle, rest) = t_bundle(n, &active, t, k, mix64(seed ^ (it as u64)));
        out.extend_from_slice(&bundle);
        // Sample the rest at 1/4 with weight ×4 (deterministic per-edge
        // coin derived from seed, iteration, and endpoints).
        active = rest
            .into_iter()
            .filter(|e| {
                let key = ((e.u as u64) << 32) | e.v as u64;
                let h = mix64(seed ^ mix64(key) ^ ((it as u64) << 48));
                (h & 3) == 0
            })
            .map(|mut e| {
                e.scale_pow4 += 1;
                e
            })
            .collect();
    }
    out.extend_from_slice(&active);
    out.sort_unstable_by_key(|e| (e.u, e.v));
    SparsifierResult {
        n,
        edges: out,
        t,
        iterations,
    }
}

/// Convenience: sparsify an unweighted graph.
pub fn koutis_xu_unit(g: &Graph, eps: f64, seed: u64) -> SparsifierResult {
    koutis_xu_sparsifier(&WeightedGraph::unit(g.clone()), eps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{complete, gnp_connected, harary};

    #[test]
    fn sparsifier_is_sparser_on_dense_graphs() {
        let g = complete(96); // m = 4560
        let s = koutis_xu_unit(&g, 0.5, 7);
        assert!(
            s.size() < g.m(),
            "sparsifier ({}) must drop edges of K_96 ({})",
            s.size(),
            g.m()
        );
        assert!(s.iterations >= 1);
    }

    #[test]
    fn total_weight_is_preserved_in_expectation() {
        // Not exact per-instance, but must be within sampling noise.
        let g = complete(96);
        let s = koutis_xu_unit(&g, 0.5, 3);
        let total: f64 = s.edges.iter().map(|e| e.weight()).sum();
        let orig = g.m() as f64;
        assert!(
            (total - orig).abs() < 0.35 * orig,
            "total weight {total} strays too far from {orig}"
        );
    }

    #[test]
    fn sparsifier_stays_connected() {
        let g = harary(10, 60);
        let s = koutis_xu_unit(&g, 0.5, 11);
        let wg = s.as_weighted_graph();
        assert!(congest_graph::algo::components::is_connected(wg.graph()));
    }

    #[test]
    fn small_graphs_pass_through_whole() {
        let g = harary(4, 20); // m = 40 ≤ floor = 80
        let s = koutis_xu_unit(&g, 0.3, 1);
        assert_eq!(s.size(), g.m());
        assert_eq!(s.iterations, 0);
        // Pass-through means exact weights.
        for e in &s.edges {
            assert_eq!(e.weight(), 1.0);
            assert_eq!(e.scale_pow4, 0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gnp_connected(80, 0.4, 5);
        let a = koutis_xu_unit(&g, 0.5, 42);
        let b = koutis_xu_unit(&g, 0.5, 42);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn bundle_width_formula() {
        // 0.5·ln(1024)/0.25 = 13.86 ⇒ 14.
        assert_eq!(bundle_width(1024, 0.5), 14);
        assert!(bundle_width(1024, 0.1) > bundle_width(1024, 0.5));
    }

    #[test]
    fn weights_are_powers_of_four() {
        let g = complete(96);
        let s = koutis_xu_unit(&g, 0.5, 9);
        for e in &s.edges {
            let expect = 4f64.powi(e.scale_pow4 as i32);
            assert_eq!(e.weight(), expect);
        }
    }
}
