//! # congest-sparsify — (1+ε) all-cuts approximation (paper §4.3)
//!
//! Theorem 7: build a Koutis–Xu \[KX16\] sparsifier `H` with `Õ(n/ε²)`
//! edges, broadcast it with Theorem 1 in `Õ(n/(λε²))` rounds, and every
//! node can then estimate **every** cut of `G` within `(1±ε)` locally —
//! the first sublinear-round algorithm to approximate *all* cuts at once.
//!
//! * [`bundle`] — t-bundle spanners: `t` iterated Baswana–Sen spanner
//!   peels, the structural core of the Koutis–Xu construction.
//! * [`koutis_xu`] — the iterated scheme: keep the bundle, sample the
//!   off-bundle edges at 1/4 with weight ×4, recurse. Expectation-exact on
//!   every cut by construction; concentration measured empirically (we
//!   build the cut-sparsifier instantiation; KX16 prove the stronger
//!   spectral property — substitution documented in DESIGN.md §2).
//! * [`cuts`] — the evaluation harness (random / singleton / ball cuts,
//!   Stoer–Wagner min-cut comparison) and the full Theorem 7 driver with
//!   the real broadcast.

pub mod bundle;
pub mod cuts;
pub mod koutis_xu;

pub use cuts::{evaluate_cuts, theorem7_all_cuts, CutQualityReport};
pub use koutis_xu::{koutis_xu_sparsifier, SparsifierResult};
