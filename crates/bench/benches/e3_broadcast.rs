//! Criterion bench for E3 (Theorem 1 vs textbook): wall-clock of the full
//! simulated pipelines.

use congest_core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastInput, DEFAULT_PARTITION_C,
};
use congest_core::partition::PartitionParams;
use congest_core::textbook::textbook_broadcast;
use congest_graph::generators::harary;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_broadcast");
    group.sample_size(10);
    let lambda = 16usize;
    let n = 96usize;
    let g = harary(lambda, n);
    for k_mult in [1usize, 4] {
        let k = n * k_mult;
        let input = BroadcastInput::random_spread(&g, k, 3);
        let params = PartitionParams::from_lambda(n, lambda, DEFAULT_PARTITION_C);
        group.bench_with_input(BenchmarkId::new("theorem1", k), &input, |b, input| {
            b.iter(|| {
                partition_broadcast_retrying(&g, input, params, &BroadcastConfig::with_seed(7), 20)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("textbook", k), &input, |b, input| {
            b.iter(|| textbook_broadcast(&g, input, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
