//! Criterion bench for E1 (Lemma 5): cost of sampling + spanning check on
//! the workhorse family.

use congest_core::partition::sample_edges;
use congest_graph::algo::components::is_spanning_connected;
use congest_graph::generators::harary;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_lemma5_sampling");
    group.sample_size(10);
    for (lambda, n) in [(16usize, 128usize), (32, 256)] {
        let g = harary(lambda, n);
        let p = 2.0 * (n as f64).ln() / lambda as f64;
        group.bench_with_input(
            BenchmarkId::new("sample+span_check", format!("lam{lambda}_n{n}")),
            &g,
            |b, g| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mask = sample_edges(g, p, seed);
                    is_spanning_connected(g, |e| mask[e as usize])
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
