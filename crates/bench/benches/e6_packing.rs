//! Criterion bench for E6: packing construction + stats on standard and
//! lower-bound families.

use congest_graph::generators::{gk13_lower_bound, harary};
use congest_packing::matroid::exact_tree_packing;
use congest_packing::random_partition::partition_packing_retrying;
use congest_packing::sampled::{lemma5_probability, sampled_packing};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_packing");
    group.sample_size(10);
    let g = harary(16, 128);
    group.bench_function("theorem2_packing_harary16_128", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (p, _, _) = partition_packing_retrying(&g, 3, 0, seed, 30).unwrap();
            p.stats(&g)
        })
    });
    group.bench_function("sampled_packing_harary16_128", |b| {
        let p = lemma5_probability(128, 16, 2.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sampled_packing(&g, 16, p, 0, seed)
                .unwrap()
                .packing
                .stats(&g)
        })
    });
    // GK13's λ is deliberately below the random partition's log n regime;
    // packings there come from the exact matroid-union algorithm.
    let (lb, _) = gk13_lower_bound(32, 6);
    group.bench_function("matroid_packing_gk13_32x6", |b| {
        b.iter(|| {
            let p = exact_tree_packing(&lb, 2, 0).expect("2 trees exist");
            p.stats(&lb)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
