//! Criterion bench for E8 (Theorem 5): Baswana–Sen construction and the
//! full spanner-broadcast APSP pipeline.

use congest_apsp::baswana_sen::baswana_sen_spanner;
use congest_apsp::weighted_apsp_approx;
use congest_graph::generators::harary;
use congest_graph::WeightedGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn weighted(lambda: usize, n: usize, seed: u64) -> WeightedGraph {
    let g = harary(lambda, n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..g.m()).map(|_| rng.gen_range(1..100) as f64).collect();
    WeightedGraph::new(g, w)
}

fn bench_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_apsp_weighted");
    group.sample_size(10);
    let g = weighted(16, 96, 1);
    for k in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("baswana_sen", k), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                baswana_sen_spanner(g, k, seed)
            })
        });
        group.bench_with_input(BenchmarkId::new("full_pipeline", k), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                weighted_apsp_approx(g, k, 16, seed).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spanner);
criterion_main!(benches);
