//! Criterion bench for E2 (Theorem 2): centralized packing construction
//! versus the full distributed protocol run.

use congest_graph::generators::harary;
use congest_packing::random_partition::{
    partition_packing_distributed, partition_packing_retrying,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_theorem2_partition");
    group.sample_size(10);
    for (lambda, n, trees) in [(16usize, 128usize, 2usize), (32, 256, 4)] {
        let g = harary(lambda, n);
        group.bench_with_input(
            BenchmarkId::new("centralized", format!("lam{lambda}_n{n}")),
            &g,
            |b, g| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    partition_packing_retrying(g, trees, 0, seed, 30).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("distributed", format!("lam{lambda}_n{n}")),
            &g,
            |b, g| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    for attempt in 0..30u64 {
                        if let Ok(ok) =
                            partition_packing_distributed(g, trees, 0, seed + attempt * 0x9E37)
                        {
                            return ok;
                        }
                    }
                    panic!("no spanning partition in 30 attempts");
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
