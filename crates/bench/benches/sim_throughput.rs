//! Engine-throughput bench (not a paper claim): rounds/second of the
//! CONGEST engine under a chatty protocol, serial vs parallel stepping —
//! the hpc-parallel "did rayon help" check.

use congest_graph::generators::{harary, torus2d};
use congest_graph::Graph;
use congest_sim::{run_protocol, EngineConfig, NodeCtx, Protocol};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Every node sends a counter to all neighbors for `rounds` rounds.
struct Chatter {
    rounds: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let mut acc = 0u64;
        for (_, &m) in ctx.inbox() {
            acc = acc.wrapping_add(m);
        }
        if ctx.round < self.rounds {
            ctx.send_all(acc.wrapping_add(ctx.round));
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.rounds
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    let graphs: Vec<(&str, Graph)> = vec![
        ("torus32x32", torus2d(32, 32)),
        ("harary16_1024", harary(16, 1024)),
    ];
    for (name, g) in &graphs {
        for parallel in [false, true] {
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(BenchmarkId::new(*name, label), g, |b, g| {
                b.iter(|| {
                    let cfg = if parallel {
                        EngineConfig::default()
                    } else {
                        EngineConfig::serial()
                    };
                    run_protocol(g, |_, _| Chatter { rounds: 50 }, cfg).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
