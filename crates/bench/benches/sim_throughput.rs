//! Engine-throughput bench, three comparisons:
//!
//! 1. **Packed plane vs. seed engine** — the packed message plane against
//!    the seed-style `Vec<Option<Msg>>` slabs ([`congest_sim::baseline`]).
//! 2. **Sharded plane vs. PR 1 engine** — the shard-owned deliver/metering
//!    plane (bit-sliced congestion counters, ring-buffer multiplexer)
//!    against the frozen PR 1 round loop ([`congest_sim::pr1`]), at
//!    `n = 10^6` across 1/2/4/8 shards on dense, sparse, and multiplexed
//!    traffic. The headline metric is the dense-traffic geomean speedup at
//!    ≥ 4 shards.
//!
//! Each workload implements the live trait plus the comparison-arm traits
//! with identical logic, so measured differences are pure engine. Results
//! are printed as criterion-style lines and exported to `BENCH_sim.json`
//! at the workspace root so later changes have a perf trajectory to
//! compare against.
//!
//! **Smoke mode** (`SIM_BENCH_SMOKE=1`): shrinks every dimension so CI can
//! execute the whole bench in seconds. Smoke runs keep all cross-checks
//! (panicking on any engine disagreement), print `REGRESSION-MARKER` if
//! the sharded engine fails to beat the PR 1 engine, and do **not**
//! rewrite `BENCH_sim.json`.

use congest_graph::generators::{complete, harary};
use congest_graph::Graph;
use congest_sim::baseline::{run_baseline, BaselineCtx, BaselineProtocol};
use congest_sim::pr1::{run_pr1, Pr1Multiplexed, Pr1NodeCtx, Pr1Protocol};
use congest_sim::sched::{random_delays, Multiplexed};
use congest_sim::{run_protocol, EngineConfig, NodeCtx, PhaseHost, Protocol};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::fmt::Write as _;
use std::time::Instant;

const ROUNDS: u64 = 200;

fn smoke() -> bool {
    std::env::var("SIM_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

/// Dense traffic: every node sends a 64-bit counter on every port, every
/// round — the worst case for both planes (all arcs occupied).
#[derive(Clone)]
struct DenseChatter {
    acc: u64,
    until: u64,
}

impl DenseChatter {
    fn new(until: u64) -> Self {
        DenseChatter { acc: 1, until }
    }

    fn step(&mut self, round: u64, inbox_sum: u64) -> Option<u64> {
        self.acc = self.acc.wrapping_add(inbox_sum);
        (round < self.until).then_some(self.acc.wrapping_add(round))
    }
}

impl Protocol for DenseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
        match self.step(ctx.round, sum) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl BaselineProtocol for DenseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut BaselineCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, &m)| m).fold(0u64, u64::wrapping_add);
        match self.step(ctx.round, sum) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl Pr1Protocol for DenseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
        match self.step(ctx.round, sum) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Sparse traffic: ~1/16 of the nodes speak each round — the regime the
/// occupancy bitset is built for (quiescent arcs cost one bit, not an
/// `Option` clear + scan).
#[derive(Clone)]
struct SparseChatter {
    node: u32,
    acc: u64,
    until: u64,
}

impl SparseChatter {
    fn new(node: u32, until: u64) -> Self {
        SparseChatter {
            node,
            acc: 1,
            until,
        }
    }

    fn speaks(&self, round: u64) -> bool {
        (self.node as u64).wrapping_add(round).is_multiple_of(16)
    }
}

impl Protocol for SparseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.acc = self
            .acc
            .wrapping_add(ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add));
        if ctx.round < self.until {
            if self.speaks(ctx.round) {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl BaselineProtocol for SparseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut BaselineCtx<'_, u64>) {
        self.acc = self
            .acc
            .wrapping_add(ctx.inbox().map(|(_, &m)| m).fold(0u64, u64::wrapping_add));
        if ctx.round < self.until {
            if self.speaks(ctx.round) {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl Pr1Protocol for SparseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, u64>) {
        self.acc = self
            .acc
            .wrapping_add(ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add));
        if ctx.round < self.until {
            if self.speaks(ctx.round) {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Truly sparse **per-port** traffic: ~1/128 of the nodes speak each
/// round, each on two rotating ports — the regime the engine's worklist
/// fast path owns (staged totals far below the sparse threshold, so the
/// deliver phase is O(traffic) instead of O(arcs)).
#[derive(Clone)]
struct SparsePorts {
    node: u32,
    acc: u64,
    until: u64,
}

impl SparsePorts {
    fn new(node: u32, until: u64) -> Self {
        SparsePorts {
            node,
            acc: 1,
            until,
        }
    }

    fn speaks(&self, round: u64) -> bool {
        (self.node as u64).wrapping_add(round).is_multiple_of(128)
    }

    fn ports(&self, round: u64, deg: usize) -> (u32, u32) {
        let p1 = (round % deg as u64) as u32;
        let p2 = ((round + deg as u64 / 2) % deg as u64) as u32;
        (p1, p2)
    }
}

impl Protocol for SparsePorts {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.acc = self
            .acc
            .wrapping_add(ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add));
        if ctx.round < self.until {
            if self.speaks(ctx.round) {
                let (p1, p2) = self.ports(ctx.round, ctx.degree());
                ctx.send(p1, self.acc | 1);
                if p2 != p1 {
                    ctx.send(p2, self.acc | 3);
                }
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl Pr1Protocol for SparsePorts {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, u64>) {
        self.acc = self
            .acc
            .wrapping_add(ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add));
        if ctx.round < self.until {
            if self.speaks(ctx.round) {
                let (p1, p2) = self.ports(ctx.round, ctx.degree());
                ctx.send(p1, self.acc | 1);
                if p2 != p1 {
                    ctx.send(p2, self.acc | 3);
                }
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Dense wave traffic: every node broadcasts every round and reacts to
/// *presence* (inbox population count) rather than reading every payload —
/// the traffic shape of the paper's flooding waves and pipelined
/// broadcasts. This is the pattern the engine's broadcast plane makes
/// O(1) per sender.
#[derive(Clone)]
struct DenseWave {
    acc: u64,
    until: u64,
}

impl DenseWave {
    fn new(until: u64) -> Self {
        DenseWave { acc: 1, until }
    }

    fn step(&mut self, round: u64, inbox_len: u64) -> Option<u64> {
        self.acc = self.acc.wrapping_add(inbox_len).rotate_left(1);
        (round < self.until).then_some(self.acc | 1)
    }
}

impl Protocol for DenseWave {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        match self.step(ctx.round, ctx.inbox_len() as u64) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl Pr1Protocol for DenseWave {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, u64>) {
        match self.step(ctx.round, ctx.inbox_len() as u64) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Wide dense broadcast: the pipelined-broadcast message shape — 96-bit
/// `(id, payload)` pairs in `u128` slabs — broadcast by every node every
/// round and fully read by receivers.
#[derive(Clone)]
struct WideBcast {
    node: u32,
    acc: u64,
    until: u64,
}

impl WideBcast {
    fn new(node: u32, until: u64) -> Self {
        WideBcast {
            node,
            acc: 1,
            until,
        }
    }

    fn step(&mut self, round: u64, inbox_fold: u64) -> Option<(u32, u64)> {
        self.acc = self.acc.wrapping_add(inbox_fold);
        (round < self.until).then_some((self.node, self.acc))
    }
}

impl Protocol for WideBcast {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        let fold = ctx
            .inbox()
            .fold(0u64, |a, (_, (id, p))| a.wrapping_add(id as u64 ^ p));
        match self.step(ctx.round, fold) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl Pr1Protocol for WideBcast {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, (u32, u64)>) {
        let fold = ctx
            .inbox()
            .fold(0u64, |a, (_, (id, p))| a.wrapping_add(id as u64 ^ p));
        match self.step(ctx.round, fold) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Multiplexed-dense traffic: `k` rotating chatter sub-protocols per node
/// (sub `i` speaks on virtual rounds ≡ `i` mod `k`), hosted by the
/// random-delay scheduler — the workload that exercises port queues every
/// round while keeping their depth bounded.
#[derive(Clone)]
struct RotChatter {
    k: u64,
    i: u64,
    until: u64,
    acc: u64,
}

impl RotChatter {
    fn step(&mut self, round: u64, inbox_sum: u64) -> Option<u64> {
        self.acc = self.acc.wrapping_add(inbox_sum);
        (round < self.until && round % self.k == self.i).then_some(self.acc | 1)
    }

    fn done(&self, round: u64) -> bool {
        round >= self.until
    }
}

impl Protocol for RotChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
        if let Some(m) = self.step(ctx.round, sum) {
            ctx.send_all(m);
        }
        ctx.set_done(self.done(ctx.round));
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl Pr1Protocol for RotChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
        if let Some(m) = self.step(ctx.round, sum) {
            ctx.send_all(m);
        }
        ctx.set_done(self.done(ctx.round));
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Wide 96-bit messages (the broadcast pipeline's `(id, payload)` shape),
/// dense — exercises the `u128` slab.
///
/// The inbox read goes through the engine's internal-iteration `fold`
/// like every other dense workload. This workload originally used an
/// external `for` loop, which was measured ~2.2× slower here: a `for`
/// loop drives `Iterator::next`'s per-item state machine, and on
/// broadcast-heavy rounds that rebuilds the presence word per word
/// advance *and* re-derives the neighbor per item — the fused
/// single-pass scan only exists on the `fold` override. That idiom gap,
/// not the `u128` slab itself, was the whole `wide_u128` deficit
/// (1.41× vs ~3× for the other dense workloads in earlier recordings).
#[derive(Clone)]
struct WideChatter {
    acc: u64,
}

impl Protocol for WideChatter {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        self.acc = ctx.inbox().fold(self.acc, |a, (_, (id, payload))| {
            a.wrapping_add(id as u64 ^ payload)
        });
        if ctx.round < ROUNDS {
            ctx.send_all((ctx.node, self.acc));
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl BaselineProtocol for WideChatter {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut BaselineCtx<'_, (u32, u64)>) {
        let node = ctx.node;
        for (_, &(id, payload)) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(id as u64 ^ payload);
        }
        if ctx.round < ROUNDS {
            ctx.send_all((node, self.acc));
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// The broadcast algorithm's own traffic shape: wide `(id, payload)`
/// messages on a rotating ~1/8 of each node's ports — what pipelined
/// routing over λ′ edge-disjoint trees looks like on the wire.
#[derive(Clone)]
struct PipelineLike {
    node: u32,
    acc: u64,
}

impl PipelineLike {
    fn active(&self, port: u32, round: u64) -> bool {
        (self.node as u64 + port as u64 + round).is_multiple_of(8)
    }
}

impl Protocol for PipelineLike {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        for (_, (id, payload)) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(id as u64 ^ payload);
        }
        if ctx.round < ROUNDS {
            for p in 0..ctx.degree() as u32 {
                if self.active(p, ctx.round) {
                    ctx.send(p, (p, self.acc));
                }
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl BaselineProtocol for PipelineLike {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut BaselineCtx<'_, (u32, u64)>) {
        for (_, &(id, payload)) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(id as u64 ^ payload);
        }
        if ctx.round < ROUNDS {
            for p in 0..ctx.degree() as u32 {
                if self.active(p, ctx.round) {
                    ctx.send(p, (p, self.acc));
                }
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Lane-salted QUIESCENT rumor flood for the wide-batch arm: lane `l`'s
/// rumor starts at a lane-dependent source and floods the circulant,
/// each node relaying once in its adoption round. Every node is `done`
/// from round 0 on, so outside the O(degree)-wide frontier a lane's
/// nodes are done-and-silent — the regime where the wide kernel's
/// active-lane word skips the node step outright, while the sequential
/// engine still pays one step call per node per round. This is the
/// "many sparse runs" shape the wide kernel exists for.
#[derive(Clone)]
struct LaneRumor {
    me: u32,
    src: u32,
    heard: bool,
    acc: u64,
}

impl LaneRumor {
    fn new(node: u32, salt: u64, n: usize) -> Self {
        let h = congest_sim::rng::mix64(0xB47C ^ salt);
        LaneRumor {
            me: node,
            src: (h % n as u64) as u32,
            heard: false,
            acc: h | 1,
        }
    }
}

impl Protocol for LaneRumor {
    type Msg = u64;
    type Output = u64;
    /// State mutates and sends happen only at round 0 (the source's
    /// announcement) or on message arrival (adoption + relay), so a
    /// done round with an empty inbox is a semantic no-op.
    const QUIESCENT: bool = true;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
        self.acc = self.acc.wrapping_add(sum);
        if ctx.inbox_len() > 0 && !self.heard {
            self.heard = true;
            ctx.send_all(sum | 1);
        }
        if ctx.round == 0 && self.me == self.src && !self.heard {
            self.heard = true;
            ctx.send_all(self.acc | 1);
        }
        ctx.set_done(true);
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// [`LaneRumor`] with a staggered tail for the wide-tail bench: the
/// rumor floods as usual, then the *source* lingers, pulsing port 0
/// every round until its lane-local round reaches `linger`. Jobs get
/// lingers of very different lengths, so a chunked wide run holds its
/// full width hostage to each chunk's slowest lane — the regime lane
/// compaction (narrowing the sweep) and mid-sweep refill (retired slots
/// keep earning) exist for.
#[derive(Clone)]
struct TailRumor {
    me: u32,
    src: u32,
    linger: u64,
    heard: bool,
    acc: u64,
}

impl TailRumor {
    fn new(node: u32, salt: u64, n: usize, linger: u64) -> Self {
        let h = congest_sim::rng::mix64(0x7A11 ^ salt);
        TailRumor {
            me: node,
            src: (h % n as u64) as u32,
            linger,
            heard: false,
            acc: h | 1,
        }
    }
}

impl Protocol for TailRumor {
    type Msg = u64;
    type Output = u64;
    /// Sends and state changes happen only at round 0, on message
    /// arrival, or at the lingering source — which stays not-done until
    /// its pulses stop — so a done round with an empty inbox is a
    /// semantic no-op.
    const QUIESCENT: bool = true;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
        self.acc = self.acc.wrapping_add(sum);
        if ctx.inbox_len() > 0 && !self.heard {
            self.heard = true;
            ctx.send_all(sum | 1);
        }
        if self.me == self.src {
            if ctx.round == 0 && !self.heard {
                self.heard = true;
                ctx.send_all(self.acc | 1);
            } else if ctx.round < self.linger {
                ctx.send(0, self.acc.wrapping_add(ctx.round) | 1);
            }
            ctx.set_done(ctx.round >= self.linger);
            return;
        }
        ctx.set_done(true);
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

struct Measurement {
    workload: &'static str,
    graph: &'static str,
    arcs: usize,
    packed_serial_ns: u128,
    packed_parallel_ns: u128,
    baseline_ns: u128,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.packed_serial_ns as f64
    }
}

fn best_of<F: FnMut() -> u64>(samples: usize, mut f: F) -> u128 {
    let mut best = u128::MAX;
    let mut sink = 0u64;
    for _ in 0..samples {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(t.elapsed().as_nanos());
    }
    criterion::black_box(sink);
    best
}

fn measure<P>(
    name: &'static str,
    gname: &'static str,
    g: &Graph,
    make: impl Fn(u32) -> P + Copy,
) -> Measurement
where
    P: Protocol<Output = u64> + BaselineProtocol<Output = u64> + Clone,
{
    // Correctness cross-check before timing: both engines must agree.
    let packed = run_protocol(g, |v, _| make(v), EngineConfig::serial()).unwrap();
    let base = run_baseline::<P, _>(g, |v, _| make(v), 10 * ROUNDS);
    assert_eq!(
        packed.outputs, base.outputs,
        "{name}/{gname} outputs differ"
    );
    assert_eq!(packed.stats.rounds, base.rounds);
    assert_eq!(packed.stats.total_messages, base.total_messages);

    let samples = 7;
    let packed_serial_ns = best_of(samples, || {
        run_protocol(g, |v, _| make(v), EngineConfig::serial())
            .unwrap()
            .stats
            .total_messages
    });
    let packed_parallel_ns = best_of(samples, || {
        run_protocol(g, |v, _| make(v), EngineConfig::default())
            .unwrap()
            .stats
            .total_messages
    });
    let baseline_ns = best_of(samples, || {
        run_baseline::<P, _>(g, |v, _| make(v), 10 * ROUNDS).total_messages
    });
    Measurement {
        workload: name,
        graph: gname,
        arcs: g.num_arcs(),
        packed_serial_ns,
        packed_parallel_ns,
        baseline_ns,
    }
}

/// One workload row of the shard-scaling comparison: the frozen PR 1
/// engine vs. the sharded engine at several shard counts. All numbers are
/// **ns per round**, measured as the delta between two run horizons so
/// per-node setup (protocol construction, slab allocation) cancels out —
/// the metric is the round loop itself.
struct ScalingRow {
    workload: &'static str,
    graph: String,
    arcs: usize,
    pr1_ns: u128,
    /// `(shards, ns per round)` per shard count, ascending.
    new_by_shards: Vec<(usize, u128)>,
}

/// One timed invocation, in ns.
fn time_once(run: &mut dyn FnMut(u64) -> u64, rounds: u64) -> u128 {
    let t = Instant::now();
    criterion::black_box(run(rounds));
    t.elapsed().as_nanos()
}

impl ScalingRow {
    fn new_ns_at(&self, shards: usize) -> u128 {
        self.new_by_shards
            .iter()
            .find(|&&(s, _)| s == shards)
            .map(|&(_, ns)| ns)
            .expect("shard count measured")
    }

    fn speedup_at(&self, shards: usize) -> f64 {
        self.pr1_ns as f64 / self.new_ns_at(shards) as f64
    }
}

fn geomean(vals: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut count) = (0.0f64, 0usize);
    for v in vals {
        sum += v.ln();
        count += 1;
    }
    (sum / count.max(1) as f64).exp()
}

/// Pool width the sharded engine gets for a given shard count: one lane
/// per shard, capped at the machine's parallelism (a 1-core runner
/// executes the sharded plane serially — same results, honest numbers).
fn pool_for(shards: usize) -> usize {
    shards.min(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The shard-scaling + PR 1 comparison section. Cross-checks engine
/// agreement at a small scale first (panicking on any mismatch — that is
/// what CI's smoke lane guards), then times the big runs. Returns the
/// rows plus the dense and sparse geomean speedups at 4 shards.
fn bench_shard_scaling() -> (Vec<ScalingRow>, f64, f64) {
    let (n_big, n_mux, rounds, mux_rounds, samples) = if smoke() {
        (60_000usize, 20_000usize, 16u64, 16u64, 2usize)
    } else {
        (1_000_000usize, 200_000usize, 24u64, 24u64, 3usize)
    };
    let lo_rounds = rounds / 4;
    let lo_mux = mux_rounds / 4;
    let mux_k = 4usize;
    // Theorem-12 queue bound for this workload: one sub speaks per phase,
    // at most two land on the same phase after the random delays, so port
    // queues never exceed a few entries (the ring overflow assert, which
    // fires in the small-scale cross-check below, keeps this honest).
    let mux_cap = mux_k;
    let mux_delays = random_delays(mux_k, 3, 0xD31A);
    let make_mux_subs = |until: u64| -> Vec<RotChatter> {
        (0..mux_k as u64)
            .map(|i| RotChatter {
                k: mux_k as u64,
                i,
                until,
                acc: 1,
            })
            .collect()
    };

    // --- Cross-checks at small scale: the sharded engine must agree with
    // the frozen PR 1 engine bit-for-bit before any timing is trusted.
    {
        let g = harary(16, 1500);
        let check_rounds = 40u64;
        let live = run_protocol(&g, |_, _| DenseChatter::new(check_rounds), {
            EngineConfig::serial().shards(4)
        })
        .unwrap();
        let frozen = run_pr1(&g, |_, _| DenseChatter::new(check_rounds), {
            EngineConfig::serial()
        })
        .unwrap();
        assert_eq!(live.outputs, frozen.outputs, "dense: sharded vs PR 1");
        assert_eq!(live.stats, frozen.stats, "dense: sharded vs PR 1 stats");

        let live = run_protocol(&g, |_, _| DenseWave::new(check_rounds), {
            EngineConfig::serial().shards(4)
        })
        .unwrap();
        let frozen = run_pr1(&g, |_, _| DenseWave::new(check_rounds), {
            EngineConfig::serial()
        })
        .unwrap();
        assert_eq!(live.outputs, frozen.outputs, "wave: sharded vs PR 1");
        assert_eq!(live.stats, frozen.stats, "wave: sharded vs PR 1 stats");

        let live = run_protocol(
            &g,
            |v, _| SparseChatter::new(v, check_rounds),
            EngineConfig::serial().shards(4),
        )
        .unwrap();
        let frozen = run_pr1(
            &g,
            |v, _| SparseChatter::new(v, check_rounds),
            EngineConfig::serial(),
        )
        .unwrap();
        assert_eq!(live.outputs, frozen.outputs, "sparse: sharded vs PR 1");
        assert_eq!(live.stats, frozen.stats, "sparse: sharded vs PR 1 stats");

        let live = run_protocol(
            &g,
            |v, _| WideBcast::new(v, check_rounds),
            EngineConfig::serial().shards(4),
        )
        .unwrap();
        let frozen = run_pr1(
            &g,
            |v, _| WideBcast::new(v, check_rounds),
            EngineConfig::serial(),
        )
        .unwrap();
        assert_eq!(live.outputs, frozen.outputs, "wide: sharded vs PR 1");
        assert_eq!(live.stats, frozen.stats, "wide: sharded vs PR 1 stats");

        // Sparse per-port traffic, with the fast path forced on and off:
        // both must match PR 1 before the sparse arm's numbers count.
        let frozen = run_pr1(
            &g,
            |v, _| SparsePorts::new(v, check_rounds),
            EngineConfig::serial(),
        )
        .unwrap();
        for thr in [0usize, usize::MAX] {
            let live = run_protocol(
                &g,
                |v, _| SparsePorts::new(v, check_rounds),
                EngineConfig::serial().shards(4).sparse_threshold(thr),
            )
            .unwrap();
            assert_eq!(live.outputs, frozen.outputs, "sparse_ports: thr {thr}");
            assert_eq!(live.stats, frozen.stats, "sparse_ports: thr {thr} stats");
        }

        let live = run_protocol(
            &g,
            |_, gr: &Graph| {
                Multiplexed::new(
                    make_mux_subs(check_rounds),
                    &mux_delays,
                    gr.degree(0),
                    mux_cap,
                )
            },
            EngineConfig::serial().shards(4),
        )
        .unwrap();
        let frozen = run_pr1(
            &g,
            |_, gr: &Graph| {
                Pr1Multiplexed::new(make_mux_subs(check_rounds), &mux_delays, gr.degree(0))
            },
            EngineConfig::serial(),
        )
        .unwrap();
        assert_eq!(live.outputs, frozen.outputs, "mux: rings vs VecDeque");
        assert_eq!(live.stats, frozen.stats, "mux: rings vs VecDeque stats");
    }

    // --- Big runs.
    let gname = format!("harary16_{n_big}");
    let g_dense = harary(16, n_big);
    let gname_mux = format!("harary8_{n_mux}");
    let g_mux = harary(8, n_mux);

    let mut rows = Vec::new();
    // Sampling is **interleaved across configurations**: every sample pass
    // times the PR 1 arm and each shard count back to back, so slow
    // machine-level drift (DRAM contention on shared hosts moves the PR 1
    // arm's cost several-fold between minutes) hits all arms of a row
    // equally and the reported *ratios* stay meaningful.
    let mut push_row = |workload: &'static str,
                        graph: String,
                        g: &Graph,
                        hi: u64,
                        lo: u64,
                        pr1: &mut dyn FnMut(u64) -> u64,
                        new: &mut dyn FnMut(usize, u64) -> u64| {
        let n_cfg = 1 + SHARD_SWEEP.len();
        let mut best_hi = vec![u128::MAX; n_cfg];
        let mut best_lo = vec![u128::MAX; n_cfg];
        for _ in 0..samples {
            for ci in 0..n_cfg {
                let (t_hi, t_lo) = if ci == 0 {
                    (time_once(pr1, hi), time_once(pr1, lo))
                } else {
                    let s = SHARD_SWEEP[ci - 1];
                    let mut f = |r: u64| new(s, r);
                    (time_once(&mut f, hi), time_once(&mut f, lo))
                };
                best_hi[ci] = best_hi[ci].min(t_hi);
                best_lo[ci] = best_lo[ci].min(t_lo);
            }
        }
        let per_round =
            |ci: usize| best_hi[ci].saturating_sub(best_lo[ci]).max(1) / (hi - lo) as u128;
        rows.push(ScalingRow {
            workload,
            graph,
            arcs: g.num_arcs(),
            pr1_ns: per_round(0),
            new_by_shards: SHARD_SWEEP
                .iter()
                .enumerate()
                .map(|(i, &s)| (s, per_round(i + 1)))
                .collect(),
        });
    };

    push_row(
        "dense_u64",
        gname.clone(),
        &g_dense,
        rounds,
        lo_rounds,
        &mut |r| {
            run_pr1(
                &g_dense,
                |_, _| DenseChatter::new(r),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        },
        &mut |shards, r| {
            congest_par::with_threads(pool_for(shards), || {
                run_protocol(
                    &g_dense,
                    |_, _| DenseChatter::new(r),
                    EngineConfig::default().shards(shards),
                )
                .unwrap()
                .stats
                .total_messages
            })
        },
    );
    push_row(
        "dense_wave",
        gname.clone(),
        &g_dense,
        rounds,
        lo_rounds,
        &mut |r| {
            run_pr1(&g_dense, |_, _| DenseWave::new(r), EngineConfig::default())
                .unwrap()
                .stats
                .total_messages
        },
        &mut |shards, r| {
            congest_par::with_threads(pool_for(shards), || {
                run_protocol(
                    &g_dense,
                    |_, _| DenseWave::new(r),
                    EngineConfig::default().shards(shards),
                )
                .unwrap()
                .stats
                .total_messages
            })
        },
    );
    push_row(
        "dense_wide_u128",
        gname.clone(),
        &g_dense,
        rounds,
        lo_rounds,
        &mut |r| {
            run_pr1(
                &g_dense,
                |v, _| WideBcast::new(v, r),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        },
        &mut |shards, r| {
            congest_par::with_threads(pool_for(shards), || {
                run_protocol(
                    &g_dense,
                    |v, _| WideBcast::new(v, r),
                    EngineConfig::default().shards(shards),
                )
                .unwrap()
                .stats
                .total_messages
            })
        },
    );
    push_row(
        "sparse_u64",
        gname.clone(),
        &g_dense,
        rounds,
        lo_rounds,
        &mut |r| {
            run_pr1(
                &g_dense,
                |v, _| SparseChatter::new(v, r),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        },
        &mut |shards, r| {
            congest_par::with_threads(pool_for(shards), || {
                run_protocol(
                    &g_dense,
                    |v, _| SparseChatter::new(v, r),
                    EngineConfig::default().shards(shards),
                )
                .unwrap()
                .stats
                .total_messages
            })
        },
    );
    push_row(
        "sparse_ports",
        gname.clone(),
        &g_dense,
        rounds,
        lo_rounds,
        &mut |r| {
            run_pr1(
                &g_dense,
                |v, _| SparsePorts::new(v, r),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        },
        &mut |shards, r| {
            congest_par::with_threads(pool_for(shards), || {
                run_protocol(
                    &g_dense,
                    |v, _| SparsePorts::new(v, r),
                    EngineConfig::default().shards(shards),
                )
                .unwrap()
                .stats
                .total_messages
            })
        },
    );
    push_row(
        "mux_dense",
        gname_mux.clone(),
        &g_mux,
        mux_rounds,
        lo_mux,
        &mut |r| {
            run_pr1(
                &g_mux,
                |_, gr: &Graph| Pr1Multiplexed::new(make_mux_subs(r), &mux_delays, gr.degree(0)),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        },
        &mut |shards, r| {
            congest_par::with_threads(pool_for(shards), || {
                run_protocol(
                    &g_mux,
                    |_, gr: &Graph| {
                        Multiplexed::new(make_mux_subs(r), &mux_delays, gr.degree(0), mux_cap)
                    },
                    EngineConfig::default().shards(shards),
                )
                .unwrap()
                .stats
                .total_messages
            })
        },
    );

    // Headline: dense-traffic geomean speedup over the PR 1 engine at
    // 4 shards (the acceptance bar of the sharded-plane rework), plus the
    // **sparse-parity** geomean over the sparse arms — the bar the sparse
    // fast path must clear (≥ 1.0: no regression behind the PR 1 loop on
    // the traffic regime Theorem 12 spends most rounds in).
    let dense_geomean = geomean(
        rows.iter()
            .filter(|r| matches!(r.workload, "dense_u64" | "dense_wave" | "dense_wide_u128"))
            .map(|r| r.speedup_at(4)),
    );
    let sparse_geomean = geomean(
        rows.iter()
            .filter(|r| matches!(r.workload, "sparse_u64" | "sparse_ports"))
            .map(|r| r.speedup_at(4)),
    );
    (rows, dense_geomean, sparse_geomean)
}

/// One row of the multiplexer comparison: the live arm (two-tier rings
/// on the live engine) vs a frozen arm — either the PR 2 single-tier
/// ring layout on the same engine (isolating the queue layout), or the
/// whole PR 1-hosted multiplexer (isolating the live engine's per-node
/// context weight, the ROADMAP's host-mode gap item). `cap` is the
/// declared Theorem-12 capacity.
struct MuxRingRow {
    workload: &'static str,
    graph: String,
    cap: usize,
    /// What the live arm is racing: the frozen comparison arm's name.
    frozen_arm: &'static str,
    live_ns: u128,
    frozen_ns: u128,
}

impl MuxRingRow {
    fn speedup(&self) -> f64 {
        self.frozen_ns as f64 / self.live_ns as f64
    }
}

/// Race the live multiplexer against the frozen PR 2 single-tier rings
/// (layout isolation) and against the PR 1-hosted `VecDeque` multiplexer
/// (host isolation — the dense-mux gap the NodeCtx slimming targets).
fn bench_mux_rings() -> Vec<MuxRingRow> {
    use congest_sim::pr2::Pr2Multiplexed;
    let (n_mux, rounds, samples) = if smoke() {
        (10_000usize, 16u64, 2usize)
    } else {
        (100_000usize, 24u64, 3usize)
    };
    let lo_rounds = rounds / 4;
    let k = 4usize;
    let delays = random_delays(k, 3, 0xD31A);
    let mk_subs = |until: u64| -> Vec<RotChatter> {
        (0..k as u64)
            .map(|i| RotChatter {
                k: k as u64,
                i,
                until,
                acc: 1,
            })
            .collect()
    };
    // Cross-check: the two ring layouts must agree bit-for-bit (layout
    // change, not a schedule change) before any timing counts.
    {
        let g = harary(8, 1200);
        for cap in [k, 64] {
            let live = run_protocol(
                &g,
                |_, gr: &Graph| Multiplexed::new(mk_subs(30), &delays, gr.degree(0), cap),
                EngineConfig::serial().shards(4),
            )
            .unwrap();
            let frozen = run_protocol(
                &g,
                |_, gr: &Graph| Pr2Multiplexed::new(mk_subs(30), &delays, gr.degree(0), cap),
                EngineConfig::serial().shards(4),
            )
            .unwrap();
            assert_eq!(live.outputs, frozen.outputs, "mux rings: cap {cap}");
            assert_eq!(live.stats, frozen.stats, "mux rings: cap {cap} stats");
        }
    }
    let graph = format!("harary8_{n_mux}");
    let g = harary(8, n_mux);
    let mut rows = Vec::new();
    // `cap` declared at the tight bound (k) and at a conservative 64 —
    // the latter is where the single-tier slab strides cache-cold while
    // shallow two-tier queues stay in their inline line.
    for (workload, cap) in [("mux_tight_cap", k), ("mux_spread_cap64", 64usize)] {
        let mut two = |r: u64| {
            run_protocol(
                &g,
                |_, gr: &Graph| Multiplexed::new(mk_subs(r), &delays, gr.degree(0), cap),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        };
        let mut one = |r: u64| {
            run_protocol(
                &g,
                |_, gr: &Graph| Pr2Multiplexed::new(mk_subs(r), &delays, gr.degree(0), cap),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        };
        // Interleaved sampling, horizon differencing: same protocol as
        // the shard-scaling rows (per-node setup cancels out).
        let (mut two_hi, mut two_lo) = (u128::MAX, u128::MAX);
        let (mut one_hi, mut one_lo) = (u128::MAX, u128::MAX);
        for _ in 0..samples {
            two_hi = two_hi.min(time_once(&mut two, rounds));
            two_lo = two_lo.min(time_once(&mut two, lo_rounds));
            one_hi = one_hi.min(time_once(&mut one, rounds));
            one_lo = one_lo.min(time_once(&mut one, lo_rounds));
        }
        let per_round =
            |hi: u128, lo: u128| hi.saturating_sub(lo).max(1) / (rounds - lo_rounds) as u128;
        rows.push(MuxRingRow {
            workload,
            graph: graph.clone(),
            cap,
            frozen_arm: "pr2_single_tier_rings",
            live_ns: per_round(two_hi, two_lo),
            frozen_ns: per_round(one_hi, one_lo),
        });
    }
    // --- Host comparison: the live engine hosting the two-tier
    // multiplexer vs the frozen PR 1 engine hosting its `VecDeque`
    // multiplexer, on dense mux traffic. Before the host-mode NodeCtx
    // slimming the live host trailed by ~20% here (ROADMAP item); this
    // row tracks that gap.
    {
        let mut live = |r: u64| {
            run_protocol(
                &g,
                |_, gr: &Graph| Multiplexed::new(mk_subs(r), &delays, gr.degree(0), k),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        };
        let mut pr1_host = |r: u64| {
            run_pr1(
                &g,
                |_, gr: &Graph| Pr1Multiplexed::new(mk_subs(r), &delays, gr.degree(0)),
                EngineConfig::default(),
            )
            .unwrap()
            .stats
            .total_messages
        };
        let (mut live_hi, mut live_lo) = (u128::MAX, u128::MAX);
        let (mut pr1_hi, mut pr1_lo) = (u128::MAX, u128::MAX);
        for _ in 0..samples {
            live_hi = live_hi.min(time_once(&mut live, rounds));
            live_lo = live_lo.min(time_once(&mut live, lo_rounds));
            pr1_hi = pr1_hi.min(time_once(&mut pr1_host, rounds));
            pr1_lo = pr1_lo.min(time_once(&mut pr1_host, lo_rounds));
        }
        let per_round =
            |hi: u128, lo: u128| hi.saturating_sub(lo).max(1) / (rounds - lo_rounds) as u128;
        rows.push(MuxRingRow {
            workload: "mux_host_dense",
            graph: graph.clone(),
            cap: k,
            frozen_arm: "pr1_engine_host",
            live_ns: per_round(live_hi, live_lo),
            frozen_ns: per_round(pr1_hi, pr1_lo),
        });
    }
    rows
}

/// One row of the phase-reuse comparison: a whole multi-phase algorithm
/// executed **session-hosted** (one resident engine for every phase) vs
/// **per-phase** (a fresh engine per phase — the pre-session
/// composition). Whole-run wall clock: the difference *is* the
/// per-phase engine churn.
struct PhaseReuseRow {
    workload: &'static str,
    graph: String,
    phases: usize,
    session_ns: u128,
    per_phase_ns: u128,
}

impl PhaseReuseRow {
    fn speedup(&self) -> f64 {
        self.per_phase_ns as f64 / self.session_ns as f64
    }
}

/// Session-hosted vs per-phase composition: the end-to-end six-phase
/// Theorem 1 broadcast, the exp-search doubling loop, and a
/// short-phase chatter composition where engine churn dominates.
fn bench_phase_reuse() -> (Vec<PhaseReuseRow>, f64) {
    use congest_core::broadcast::{partition_broadcast_with, BroadcastConfig, BroadcastInput};
    use congest_core::exp_search::exp_search_broadcast;
    use congest_core::partition::PartitionParams;

    let (n_bcast, n_search, n_chat, samples) = if smoke() {
        (2_000usize, 1_000usize, 40_000usize, 2usize)
    } else {
        (40_000usize, 12_000usize, 400_000usize, 3usize)
    };
    let mut rows = Vec::new();

    // --- Theorem 1 end to end (six phases).
    {
        let g = harary(16, n_bcast);
        let input = BroadcastInput::random_spread(&g, n_bcast / 4, 7);
        let params = PartitionParams::from_lambda(g.n(), 16, 2.0);
        let run_arm = |resident: bool| {
            let mut cfg = BroadcastConfig::with_seed(0x7E57);
            cfg.phase_resident = resident;
            partition_broadcast_with(&g, &input, params, &cfg).unwrap()
        };
        // Cross-check: both compositions must agree bit for bit.
        let a = run_arm(true);
        let b = run_arm(false);
        assert_eq!(a.stats, b.stats, "theorem1: session vs per-phase stats");
        assert_eq!(a.per_node, b.per_node, "theorem1: session vs per-phase");
        assert!(a.all_delivered());
        let (mut ses, mut per) = (u128::MAX, u128::MAX);
        for _ in 0..samples {
            let t = Instant::now();
            criterion::black_box(run_arm(true).total_rounds);
            ses = ses.min(t.elapsed().as_nanos());
            let t = Instant::now();
            criterion::black_box(run_arm(false).total_rounds);
            per = per.min(t.elapsed().as_nanos());
        }
        rows.push(PhaseReuseRow {
            workload: "theorem1_broadcast_6phase",
            graph: format!("harary16_{n_bcast}"),
            phases: 6,
            session_ns: ses,
            per_phase_ns: per,
        });
    }

    // --- Exponential search (the doubling loop re-pays partition +
    // subgraph-BFS + validity check per iteration).
    {
        let g = harary(8, n_search);
        let input = BroadcastInput::random_spread(&g, n_search / 4, 3);
        let run_arm = |resident: bool| {
            let mut cfg = BroadcastConfig::with_seed(0x5EA);
            cfg.phase_resident = resident;
            exp_search_broadcast(&g, &input, &cfg).unwrap()
        };
        let (a, ra) = run_arm(true);
        let (b, rb) = run_arm(false);
        assert_eq!(a.stats, b.stats, "exp_search: session vs per-phase");
        assert_eq!(ra, rb, "exp_search: reports diverge");
        assert!(a.all_delivered());
        let phases = a.phases.len();
        let (mut ses, mut per) = (u128::MAX, u128::MAX);
        for _ in 0..samples {
            let t = Instant::now();
            criterion::black_box(run_arm(true).0.total_rounds);
            ses = ses.min(t.elapsed().as_nanos());
            let t = Instant::now();
            criterion::black_box(run_arm(false).0.total_rounds);
            per = per.min(t.elapsed().as_nanos());
        }
        rows.push(PhaseReuseRow {
            workload: "exp_search_broadcast",
            graph: format!("harary8_{n_search}"),
            phases,
            session_ns: ses,
            per_phase_ns: per,
        });
    }

    // --- Short phases at scale: 12 three-round phases, where engine
    // (re)construction dominates the rounds themselves.
    {
        let g = harary(16, n_chat);
        let phase_count = 12usize;
        let run_arm = |resident: bool| -> u64 {
            let mut host = PhaseHost::new(&g, resident);
            let mut acc = 0u64;
            for p in 0..phase_count as u64 {
                let out = host
                    .run(
                        |_, _| DenseChatter::new(3),
                        EngineConfig::with_seed(congest_sim::rng::phase_seed(0xC0DE, p)),
                    )
                    .unwrap();
                acc ^= out.stats.total_messages;
            }
            acc
        };
        assert_eq!(run_arm(true), run_arm(false), "short_phases cross-check");
        let (mut ses, mut per) = (u128::MAX, u128::MAX);
        for _ in 0..samples {
            let t = Instant::now();
            criterion::black_box(run_arm(true));
            ses = ses.min(t.elapsed().as_nanos());
            let t = Instant::now();
            criterion::black_box(run_arm(false));
            per = per.min(t.elapsed().as_nanos());
        }
        rows.push(PhaseReuseRow {
            workload: "short_phases_12x3rounds",
            graph: format!("harary16_{n_chat}"),
            phases: phase_count,
            session_ns: ses,
            per_phase_ns: per,
        });
    }

    let geo = geomean(rows.iter().map(PhaseReuseRow::speedup));
    (rows, geo)
}

/// One row of the churn-repair race: a remove batch applied and then
/// re-added at a phase boundary, incremental arm vs full rebuild. Both
/// numbers are **ns per mutation batch** (one `apply_pending`, i.e. one
/// graph splice + engine repair, vs one `GraphBuilder::build` + one
/// `Session::new`).
struct ChurnRepairRow {
    graph: String,
    batch: usize,
    incremental_ns: u128,
    rebuild_ns: u128,
}

impl ChurnRepairRow {
    fn speedup(&self) -> f64 {
        self.rebuild_ns as f64 / self.incremental_ns as f64
    }
}

/// Incremental repair vs full rebuild at phase boundaries. The workload
/// alternates a remove batch with the matching re-add batch, so the
/// topology (and therefore every repair's work size) is identical cycle
/// after cycle. The rebuild arm is given its edge lists for free — only
/// `GraphBuilder::build` + `Session::new` are timed — so the comparison
/// is pure construct-vs-repair.
fn bench_churn_repair() -> (Vec<ChurnRepairRow>, f64) {
    use congest_graph::GraphBuilder;
    use congest_sim::{ChurnSession, Mutation, Session};

    let (configs, cycles, samples) = if smoke() {
        (vec![(2_000usize, 16usize)], 2u32, 2usize)
    } else {
        (
            vec![(20_000usize, 16usize), (20_000, 256), (200_000, 64)],
            4u32,
            3usize,
        )
    };
    let mut rows = Vec::new();
    for (n, batch) in configs {
        let g = harary(16, n);
        let full: Vec<(u32, u32)> = g.edge_list().map(|(_, u, v)| (u, v)).collect();
        // A well-spread batch: every (m / batch)-th edge of the canonical list.
        let step = full.len() / batch;
        let picked: Vec<(u32, u32)> = (0..batch).map(|i| full[i * step]).collect();
        let removed: Vec<(u32, u32)> = full
            .iter()
            .copied()
            .filter(|e| !picked.contains(e))
            .collect();

        let mut churn = ChurnSession::new(g.clone());
        let cycle = |churn: &mut ChurnSession| {
            for &(u, v) in &picked {
                churn.queue_mut().push(Mutation::RemoveEdge(u, v));
            }
            churn.apply_pending().unwrap();
            for &(u, v) in &picked {
                churn.queue_mut().push(Mutation::AddEdge(u, v));
            }
            churn.apply_pending().unwrap();
        };
        // Cross-check before timing: a full cycle must restore the exact
        // CSR (edge ids included), and a phase on the long-lived repaired
        // session must be bit-identical to one on a fresh session.
        cycle(&mut churn);
        assert_eq!(
            churn.graph(),
            &g,
            "churn_repair: remove+readd did not restore the graph"
        );
        let cfg = || EngineConfig::serial().seed(0xC842);
        let live = churn
            .run(|_, _| DenseChatter::new(4), cfg())
            .unwrap()
            .take_outputs();
        let fresh = Session::new(&g)
            .run(|_, _| DenseChatter::new(4), cfg())
            .unwrap()
            .take_outputs();
        assert_eq!(live, fresh, "churn_repair: repaired session diverged");
        // Warm a second cycle so the repair scratch (which ping-pongs
        // between two buffer sets) reaches steady state before timing.
        cycle(&mut churn);

        let incremental_total = best_of(samples, || {
            for _ in 0..cycles {
                cycle(&mut churn);
            }
            churn.graph().num_arcs() as u64
        });
        let rebuild_total = best_of(samples, || {
            let mut acc = 0u64;
            for _ in 0..cycles {
                for list in [&removed, &full] {
                    let g2 = GraphBuilder::new(n)
                        .edges(list.iter().copied())
                        .build()
                        .unwrap();
                    let sess = Session::new(&g2);
                    criterion::black_box(&sess);
                    acc = acc.wrapping_add(g2.num_arcs() as u64);
                }
            }
            acc
        });
        let events = (cycles as u128) * 2;
        rows.push(ChurnRepairRow {
            graph: format!("harary16_{n}"),
            batch,
            incremental_ns: incremental_total / events,
            rebuild_ns: rebuild_total / events,
        });
    }
    let geo = geomean(rows.iter().map(ChurnRepairRow::speedup));
    (rows, geo)
}

struct WideBatchRow {
    w: usize,
    ns: u128,
    inst_rounds_per_sec: f64,
    speedup_vs_seq: f64,
}

/// Wide-batch throughput: W independent sparse instances through one
/// [`congest_sim::WideSession`] sweep vs the same instance on a
/// sequential `Session`, both single-core. Metric is instances·rounds
/// per second; the acceptance bar is W=32 ≥ 4× the sequential arm.
/// All 64 lanes are cross-checked bit-identical (outputs + stats)
/// against their per-lane sequential runs before any timing.
fn bench_wide_batch() -> (Vec<WideBatchRow>, f64) {
    use congest_sim::{LaneSpec, Session, WideSession};

    let (n, samples) = if smoke() {
        (1024usize, 2usize)
    } else {
        (4096usize, 5usize)
    };
    let g = harary(6, n);
    let lane_seed = |l: usize| congest_sim::rng::mix64(0x57ED_BA7C ^ l as u64);
    let wide_cfg = EngineConfig::serial();
    let seq_cfg = |l: usize| EngineConfig::serial().seed(lane_seed(l));
    let lanes_for =
        |w: usize| -> Vec<LaneSpec> { (0..w).map(|l| LaneSpec::new(lane_seed(l))).collect() };

    let mut wide = WideSession::new(&g);

    // Cross-check the full width bit-identical before timing anything,
    // and record each lane's true round count for the throughput metric
    // (sources sit at different eccentricities, so lanes can differ).
    let lanes64 = lanes_for(64);
    let lane_rounds: Vec<u64> = {
        let out = wide
            .run(
                &lanes64,
                |v, l, _| LaneRumor::new(v, l as u64, n),
                wide_cfg.clone(),
            )
            .unwrap();
        for l in 0..64 {
            let mut sess = Session::new(&g);
            let seq = sess
                .run(|v, _| LaneRumor::new(v, l as u64, n), seq_cfg(l))
                .unwrap();
            assert_eq!(
                out.stats(l),
                seq.stats,
                "wide_batch lane {l} stats diverged"
            );
            assert_eq!(
                out.outputs(l),
                seq.outputs(),
                "wide_batch lane {l} outputs diverged"
            );
        }
        (0..64).map(|l| out.stats(l).rounds).collect()
    };

    // Sequential arm: one instance per run on a resident Session.
    let seq_ns = {
        let mut sess = Session::new(&g);
        best_of(samples, || {
            let out = sess
                .run(|v, _| LaneRumor::new(v, 0, n), seq_cfg(0))
                .unwrap();
            out.outputs()[0]
        })
    };
    let seq_rate = lane_rounds[0] as f64 / (seq_ns as f64 / 1e9);

    let mut rows = Vec::new();
    for w in [1usize, 8, 32, 64] {
        let lanes = lanes_for(w);
        let ns = best_of(samples, || {
            let out = wide
                .run(
                    &lanes,
                    |v, l, _| LaneRumor::new(v, l as u64, n),
                    wide_cfg.clone(),
                )
                .unwrap();
            out.outputs(0)[0]
        });
        let inst_rounds: u64 = lane_rounds[..w].iter().sum();
        let rate = inst_rounds as f64 / (ns as f64 / 1e9);
        rows.push(WideBatchRow {
            w,
            ns,
            inst_rounds_per_sec: rate,
            speedup_vs_seq: rate / seq_rate,
        });
    }
    let at_32 = rows
        .iter()
        .find(|r| r.w == 32)
        .map(|r| r.speedup_vs_seq)
        .unwrap_or(0.0);
    (rows, at_32)
}

struct WideTailRow {
    arm: &'static str,
    wall_ns: u128,
    jobs_per_sec: f64,
}

/// Staggered-termination job stream through the wide kernel: J
/// lane-salted rumor floods whose sources linger for staggered spans,
/// with each 32-job chunk anchored by one job that lingers ~64x the
/// flood itself. Three arms, all single-core on one resident
/// `WideSession`:
///
/// * `chunked_no_compact` — 32-lane `run()` per chunk, compaction off:
///   the frozen pre-compaction kernel, paying the full-width sweep for
///   every straggler round.
/// * `chunked_compact` — the same chunks with lane compaction on: the
///   sweep narrows as lanes retire, but each chunk still waits for its
///   slowest lane.
/// * `refill_steady` — one `run_refill` drain over the whole queue:
///   compaction plus mid-sweep refill, so retired slots keep earning
///   while stragglers linger.
///
/// Every job of every arm is cross-checked bit-identical (outputs +
/// stats) against its isolated sequential `Session` run before any
/// timing. The acceptance bar: continuous batching (the refill arm)
/// ≥ 1.5x the non-compacting chunked kernel.
fn bench_wide_tail() -> (Vec<WideTailRow>, f64, f64) {
    use congest_sim::{LaneSpec, RunStats, Session, WideSession};

    let (n, jobs, samples) = if smoke() {
        (256usize, 96usize, 2usize)
    } else {
        (1024usize, 192usize, 5usize)
    };
    let w = 32usize;
    let g = harary(6, n);
    let job_seed = |j: usize| congest_sim::rng::mix64(0x7A11_C0DE ^ j as u64);
    let specs: Vec<LaneSpec> = (0..jobs).map(|j| LaneSpec::new(job_seed(j))).collect();
    let seq_cfg = |j: usize| EngineConfig::serial().seed(job_seed(j));

    // Tail lengths are keyed to the measured flood so the mix keeps its
    // shape across graph sizes: lane l of each chunk lingers l/8 floods
    // (staggered termination), and lane 0 anchors the chunk at 64
    // floods — the straggler the chunked arms must wait out chunk by
    // chunk, while the refill arm overlaps all the anchors.
    let flood_rounds = {
        let mut sess = Session::new(&g);
        let out = sess
            .run(|v, _| TailRumor::new(v, 1, n, 0), seq_cfg(1))
            .unwrap();
        out.stats.rounds
    };
    let linger = move |j: usize| {
        let lane = (j % w) as u64;
        if lane == 0 {
            64 * flood_rounds
        } else {
            lane * flood_rounds / 8
        }
    };
    let mk = move |v: u32, j: usize| TailRumor::new(v, j as u64, n, linger(j));

    // The isolated oracle, once per job: every arm below must reproduce
    // these outputs and stats bit-for-bit.
    let expected: Vec<(Vec<u64>, RunStats)> = (0..jobs)
        .map(|j| {
            let mut sess = Session::new(&g);
            let out = sess.run(|v, _| mk(v, j), seq_cfg(j)).unwrap();
            let stats = out.stats;
            (out.take_outputs(), stats)
        })
        .collect();

    let chunks: Vec<std::ops::Range<usize>> = (0..jobs)
        .step_by(w)
        .map(|lo| lo..(lo + w).min(jobs))
        .collect();
    let run_chunked = |wide: &mut WideSession<'_>, compact: bool, check: bool| -> u64 {
        let cfg = EngineConfig::serial().compact(compact);
        let mut acc = 0u64;
        for chunk in &chunks {
            let lo = chunk.start;
            let out = wide
                .run(&specs[chunk.clone()], |v, l, _| mk(v, lo + l), cfg.clone())
                .unwrap();
            for l in 0..chunk.len() {
                if check {
                    let (outputs, stats) = &expected[lo + l];
                    assert_eq!(
                        out.outputs(l),
                        &outputs[..],
                        "wide_tail job {} outputs diverged (compact: {compact})",
                        lo + l
                    );
                    assert_eq!(
                        &out.stats(l),
                        stats,
                        "wide_tail job {} stats diverged (compact: {compact})",
                        lo + l
                    );
                }
                acc ^= out.outputs(l)[0] ^ out.stats(l).rounds;
            }
        }
        acc
    };
    let run_refill = |wide: &mut WideSession<'_>, scratch: &mut Vec<u64>, check: bool| -> u64 {
        let mut acc = 0u64;
        let admitted = wide.run_refill::<TailRumor, _, _, _>(
            &specs[..w],
            |v, j, _| mk(v, j),
            EngineConfig::serial(),
            |job| (job < jobs).then(|| specs[job].clone()),
            |mut r| {
                r.take_outputs_into(scratch);
                if check {
                    let (outputs, stats) = &expected[r.job];
                    assert_eq!(
                        &scratch[..],
                        &outputs[..],
                        "wide_tail refill job {} outputs diverged",
                        r.job
                    );
                    assert_eq!(
                        &r.stats, stats,
                        "wide_tail refill job {} stats diverged",
                        r.job
                    );
                }
                acc ^= scratch[0] ^ r.stats.rounds ^ r.job as u64;
            },
        );
        assert_eq!(admitted, jobs, "wide_tail refill queue must drain");
        acc
    };

    // Cross-check all three arms bit-identical before timing anything.
    let mut wide = WideSession::new(&g);
    let mut scratch: Vec<u64> = Vec::new();
    run_chunked(&mut wide, false, true);
    run_chunked(&mut wide, true, true);
    run_refill(&mut wide, &mut scratch, true);

    let baseline_ns = best_of(samples, || run_chunked(&mut wide, false, false));
    let compact_ns = best_of(samples, || run_chunked(&mut wide, true, false));
    let refill_ns = best_of(samples, || run_refill(&mut wide, &mut scratch, false));

    let rate = |ns: u128| jobs as f64 / (ns as f64 / 1e9);
    let rows = vec![
        WideTailRow {
            arm: "chunked_no_compact",
            wall_ns: baseline_ns,
            jobs_per_sec: rate(baseline_ns),
        },
        WideTailRow {
            arm: "chunked_compact",
            wall_ns: compact_ns,
            jobs_per_sec: rate(compact_ns),
        },
        WideTailRow {
            arm: "refill_steady",
            wall_ns: refill_ns,
            jobs_per_sec: rate(refill_ns),
        },
    ];
    let compact_speedup = baseline_ns as f64 / compact_ns as f64;
    let refill_speedup = baseline_ns as f64 / refill_ns as f64;
    (rows, compact_speedup, refill_speedup)
}

struct ServeRow {
    arm: &'static str,
    wall_ns: u128,
    jobs_per_sec: f64,
}

/// Serving-layer throughput: one multi-tenant rumor job stream over two
/// highly-connected circulants (the paper's regime; per-job sources,
/// seeds, and tenants) pushed through the `PoolServer`'s batching drain
/// — warm pooled states, compatible jobs grouped onto wide lane sweeps —
/// vs the same stream run one fresh `Session` per job
/// (`run_job_isolated`, the pool's oracle). Every output and stat is
/// cross-checked bit-identical before anything is timed. Returns the two
/// arms plus the batched-vs-isolated speedup.
///
/// The mix is deliberately all wide-worthy: rumor's thin wavefront is
/// where lane batching amortizes the arc sweep (measured ~3.7x at 32
/// lanes on `harary(6, 1024)`), while dense-head families like flood-max
/// run every lane hot simultaneously and batch roughly latency-neutral —
/// the policy tradeoff documented on `JobSpec::wide_worthy`.
fn bench_serve() -> (Vec<ServeRow>, f64) {
    use congest_sim::rng::mix64;
    use congest_sim::{run_job_isolated, Job, JobOutput, JobSpec, JobStatus, PoolServer};

    let (n, jobs_n, samples) = if smoke() {
        (1024usize, 64usize, 2usize)
    } else {
        (4096usize, 128usize, 5usize)
    };
    let graphs = [harary(6, n), harary(6, 3 * n / 4)];
    let cfg = EngineConfig::serial();

    // The stream: alternating graphs (the batcher has to regroup), every
    // job its own source and seed, tenants interleaved.
    let stream: Vec<(usize, JobSpec, u64, u32)> = (0..jobs_n)
        .map(|j| {
            let graph = j % 2;
            let spec = JobSpec::Rumor {
                source: (mix64(0x5E11 ^ j as u64) % graphs[graph].n() as u64) as u32,
            };
            (
                graph,
                spec,
                mix64(0x0B_5EED ^ mix64(j as u64)),
                (j % 4) as u32,
            )
        })
        .collect();

    let mut server = PoolServer::new(cfg.clone(), jobs_n);
    let keys = [
        server.register_graph(graphs[0].clone()),
        server.register_graph(graphs[1].clone()),
    ];
    let serve_once = |server: &mut PoolServer, out: &mut Vec<JobOutput>| {
        out.clear();
        for (graph, spec, seed, tenant) in &stream {
            server
                .submit(
                    Job {
                        graph: keys[*graph],
                        protocol: spec.clone(),
                        seed: *seed,
                        faults: None,
                        tenant: *tenant,
                    },
                    out,
                )
                .expect("graph is registered");
        }
        server.drain(out);
        out.sort_by_key(|o| o.id);
    };

    // Cross-check the whole stream bit-identical against the isolated
    // oracle before timing anything.
    let mut out = Vec::new();
    serve_once(&mut server, &mut out);
    assert_eq!(out.len(), stream.len());
    for ((graph, spec, seed, tenant), o) in stream.iter().zip(&out) {
        let (outputs, stats) = run_job_isolated(&graphs[*graph], spec, *seed, None, &cfg).unwrap();
        assert_eq!(o.status, JobStatus::Done, "serve job {:?} failed", o.id);
        assert_eq!(o.tenant, *tenant);
        assert_eq!(o.outputs, outputs, "serve job {:?} outputs diverged", o.id);
        assert_eq!(o.stats, stats, "serve job {:?} stats diverged", o.id);
    }
    assert!(
        server.batched_jobs() > server.solo_jobs(),
        "the mix must actually exercise wide batching ({} batched, {} solo)",
        server.batched_jobs(),
        server.solo_jobs()
    );

    // Batched arm: the resident server (pool stays warm across samples,
    // as in steady-state serving).
    let pooled_ns = best_of(samples, || {
        serve_once(&mut server, &mut out);
        out.iter().fold(0u64, |a, o| {
            a ^ o.outputs.first().copied().unwrap_or(0) ^ o.stats.total_messages
        })
    });
    // Isolated arm: one fresh session per job, same configs, same order.
    let isolated_ns = best_of(samples, || {
        stream.iter().fold(0u64, |a, (graph, spec, seed, _)| {
            let (outputs, stats) =
                run_job_isolated(&graphs[*graph], spec, *seed, None, &cfg).unwrap();
            a ^ outputs.first().copied().unwrap_or(0) ^ stats.total_messages
        })
    });

    let rate = |ns: u128| jobs_n as f64 / (ns as f64 / 1e9);
    let rows = vec![
        ServeRow {
            arm: "pool_batched",
            wall_ns: pooled_ns,
            jobs_per_sec: rate(pooled_ns),
        },
        ServeRow {
            arm: "session_per_job",
            wall_ns: isolated_ns,
            jobs_per_sec: rate(isolated_ns),
        },
    ];
    let speedup = isolated_ns as f64 / pooled_ns as f64;
    (rows, speedup)
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    measurements: &[Measurement],
    scaling: &[ScalingRow],
    mux_rings: &[MuxRingRow],
    phase_reuse: &[PhaseReuseRow],
    churn_repair: &[ChurnRepairRow],
    wide_batch: &[WideBatchRow],
    wide_tail: &[WideTailRow],
    serve: &[ServeRow],
    dense_geomean: f64,
    sparse_geomean: f64,
    phase_reuse_geomean: f64,
    churn_repair_geomean: f64,
    wide_batch_speedup_32: f64,
    wide_tail_compact: f64,
    wide_tail_refill: f64,
    serve_speedup: f64,
    path: &std::path::Path,
) {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"sim_throughput\",");
    let _ = writeln!(s, "  \"rounds_per_run\": {ROUNDS},");
    let _ = writeln!(
        s,
        "  \"note\": \"packed slab engine vs seed-style Vec<Option<Msg>> baseline on one core; ns = best of 7 whole-run samples; headline metric is geomean_speedup across workloads\","
    );
    let _ = writeln!(s, "  \"workloads\": [");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"workload\": \"{}\",", m.workload);
        let _ = writeln!(s, "      \"graph\": \"{}\",", m.graph);
        let _ = writeln!(s, "      \"arcs\": {},", m.arcs);
        let _ = writeln!(s, "      \"packed_serial_ns\": {},", m.packed_serial_ns);
        let _ = writeln!(s, "      \"packed_parallel_ns\": {},", m.packed_parallel_ns);
        let _ = writeln!(s, "      \"baseline_ns\": {},", m.baseline_ns);
        let _ = writeln!(
            s,
            "      \"speedup_packed_vs_baseline\": {:.3}",
            m.speedup()
        );
        let _ = writeln!(
            s,
            "    }}{}",
            if i + 1 < measurements.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let min = measurements
        .iter()
        .map(Measurement::speedup)
        .fold(f64::INFINITY, f64::min);
    let geomean = (measurements.iter().map(|m| m.speedup().ln()).sum::<f64>()
        / measurements.len() as f64)
        .exp();
    let _ = writeln!(s, "  \"min_speedup\": {min:.3},");
    let _ = writeln!(s, "  \"geomean_speedup\": {geomean:.3},");
    // --- Shard-scaling section: sharded engine vs the frozen PR 1 engine.
    let _ = writeln!(
        s,
        "  \"shard_scaling_note\": \"sharded deliver/metering plane + ring-buffer multiplexer vs the frozen PR 1 round loop (congest_sim::pr1); values are ns per round via horizon differencing (setup cancels); pool width = min(shards, cores)\","
    );
    let _ = writeln!(
        s,
        "  \"shard_scaling_cores\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(s, "  \"shard_scaling\": [");
    for (i, r) in scaling.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"workload\": \"{}\",", r.workload);
        let _ = writeln!(s, "      \"graph\": \"{}\",", r.graph);
        let _ = writeln!(s, "      \"arcs\": {},", r.arcs);
        let _ = writeln!(s, "      \"pr1_ns_per_round\": {},", r.pr1_ns);
        for &(shards, ns) in &r.new_by_shards {
            let _ = writeln!(s, "      \"sharded_ns_per_round_{shards}\": {ns},");
        }
        for &(shards, _) in &r.new_by_shards {
            let _ = writeln!(
                s,
                "      \"speedup_vs_pr1_{shards}_shards\": {:.3}{}",
                r.speedup_at(shards),
                if shards == *SHARD_SWEEP.last().unwrap() {
                    ""
                } else {
                    ","
                }
            );
        }
        let _ = writeln!(s, "    }}{}", if i + 1 < scaling.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"pr1_dense_geomean_speedup_4_shards\": {dense_geomean:.3},"
    );
    // --- Sparse-parity section: the sparse fast path's acceptance bar.
    let _ = writeln!(
        s,
        "  \"sparse_parity_note\": \"sparse per-port traffic vs the frozen PR 1 engine; the worklist fast path must keep the live engine at parity or better (geomean >= 1.0 at 4 shards)\","
    );
    let _ = writeln!(s, "  \"sparse_parity\": {{");
    let _ = writeln!(s, "    \"workloads\": [");
    let sparse_rows: Vec<&ScalingRow> = scaling
        .iter()
        .filter(|r| matches!(r.workload, "sparse_u64" | "sparse_ports"))
        .collect();
    for (i, r) in sparse_rows.iter().enumerate() {
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"workload\": \"{}\",", r.workload);
        let _ = writeln!(s, "        \"graph\": \"{}\",", r.graph);
        let _ = writeln!(s, "        \"pr1_ns_per_round\": {},", r.pr1_ns);
        let _ = writeln!(s, "        \"sharded_ns_per_round_4\": {},", r.new_ns_at(4));
        let _ = writeln!(
            s,
            "        \"speedup_vs_pr1_4_shards\": {:.3}",
            r.speedup_at(4)
        );
        let _ = writeln!(
            s,
            "      }}{}",
            if i + 1 < sparse_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(s, "    \"geomean_vs_pr1_4_shards\": {sparse_geomean:.3}");
    let _ = writeln!(s, "  }},");
    // --- Multiplexer comparisons: the live arm (two-tier rings on the
    // live engine) vs each frozen arm — the PR 2 single-tier rings
    // (layout isolation) and the PR 1 engine host (host-mode context
    // isolation; the ROADMAP's dense-mux gap item).
    let _ = writeln!(
        s,
        "  \"mux_ring_compare_note\": \"live arm = two-tier (inline head + spill arena) port queues hosted on the live engine; frozen_arm names the comparison: pr2_single_tier_rings (same engine, PR 2 ring layout) or pr1_engine_host (whole PR 1-hosted VecDeque multiplexer); ns per round via horizon differencing\","
    );
    let _ = writeln!(s, "  \"mux_ring_compare\": [");
    for (i, r) in mux_rings.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"workload\": \"{}\",", r.workload);
        let _ = writeln!(s, "      \"graph\": \"{}\",", r.graph);
        let _ = writeln!(s, "      \"declared_capacity\": {},", r.cap);
        let _ = writeln!(s, "      \"frozen_arm\": \"{}\",", r.frozen_arm);
        let _ = writeln!(s, "      \"live_ns_per_round\": {},", r.live_ns);
        let _ = writeln!(s, "      \"frozen_ns_per_round\": {},", r.frozen_ns);
        let _ = writeln!(s, "      \"speedup_live\": {:.3}", r.speedup());
        let _ = writeln!(
            s,
            "    }}{}",
            if i + 1 < mux_rings.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    // --- Phase-reuse section: session-hosted vs per-phase composition.
    let _ = writeln!(
        s,
        "  \"phase_reuse_note\": \"whole multi-phase algorithms executed on one resident congest_sim::Session vs a fresh engine per phase (the pre-session run_protocol composition); whole-run wall clock, best of N; both arms cross-checked bit-identical before timing\","
    );
    let _ = writeln!(s, "  \"phase_reuse\": {{");
    let _ = writeln!(s, "    \"workloads\": [");
    for (i, r) in phase_reuse.iter().enumerate() {
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"workload\": \"{}\",", r.workload);
        let _ = writeln!(s, "        \"graph\": \"{}\",", r.graph);
        let _ = writeln!(s, "        \"phases\": {},", r.phases);
        let _ = writeln!(s, "        \"session_ns\": {},", r.session_ns);
        let _ = writeln!(s, "        \"per_phase_ns\": {},", r.per_phase_ns);
        let _ = writeln!(s, "        \"speedup_session\": {:.3}", r.speedup());
        let _ = writeln!(
            s,
            "      }}{}",
            if i + 1 < phase_reuse.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"geomean_session_vs_per_phase\": {phase_reuse_geomean:.3}"
    );
    let _ = writeln!(s, "  }},");
    // --- Churn-repair section: incremental phase-boundary repair vs
    // full rebuild, the dynamic-graph acceptance bar.
    let _ = writeln!(
        s,
        "  \"churn_repair_note\": \"phase-boundary churn: a remove batch then the matching re-add batch; incremental arm = in-place CSR splice + engine repair on a live ChurnSession, rebuild arm = GraphBuilder::build + Session::new from a prepared edge list; ns per mutation batch, best of N; both arms cross-checked bit-identical before timing (geomean >= 1.0)\","
    );
    let _ = writeln!(s, "  \"churn_repair\": {{");
    let _ = writeln!(s, "    \"workloads\": [");
    for (i, r) in churn_repair.iter().enumerate() {
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"graph\": \"{}\",", r.graph);
        let _ = writeln!(s, "        \"batch_edges\": {},", r.batch);
        let _ = writeln!(
            s,
            "        \"incremental_ns_per_batch\": {},",
            r.incremental_ns
        );
        let _ = writeln!(s, "        \"rebuild_ns_per_batch\": {},", r.rebuild_ns);
        let _ = writeln!(s, "        \"speedup_incremental\": {:.3}", r.speedup());
        let _ = writeln!(
            s,
            "      }}{}",
            if i + 1 < churn_repair.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"geomean_incremental_vs_rebuild\": {churn_repair_geomean:.3}"
    );
    let _ = writeln!(s, "  }},");
    // --- Wide-batch section: W instances through one interleaved sweep.
    let _ = writeln!(
        s,
        "  \"wide_batch_note\": \"W independent lane-salted QUIESCENT rumor floods on the harary(6, n) circulant through one WideSession sweep vs one instance per sequential Session run, both single-core; metric is instances*rounds/sec, whole-run wall clock, best of N; all 64 lanes cross-checked bit-identical (outputs + stats) against per-lane sequential runs before timing; acceptance bar: W=32 >= 4x sequential\","
    );
    let _ = writeln!(s, "  \"wide_batch\": {{");
    let _ = writeln!(s, "    \"arms\": [");
    for (i, r) in wide_batch.iter().enumerate() {
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"lanes\": {},", r.w);
        let _ = writeln!(s, "        \"wall_ns\": {},", r.ns);
        let _ = writeln!(
            s,
            "        \"instances_rounds_per_sec\": {:.0},",
            r.inst_rounds_per_sec
        );
        let _ = writeln!(
            s,
            "        \"speedup_vs_sequential\": {:.3}",
            r.speedup_vs_seq
        );
        let _ = writeln!(
            s,
            "      }}{}",
            if i + 1 < wide_batch.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"speedup_vs_sequential_32_lanes\": {wide_batch_speedup_32:.3}"
    );
    let _ = writeln!(s, "  }},");
    // --- Wide-tail section: continuous batching vs chunked full-width.
    let _ = writeln!(
        s,
        "  \"wide_tail_note\": \"staggered-termination rumor mix on harary(6, n): sources linger pulsing one port for staggered spans, each 32-job chunk anchored by a straggler lingering ~64 floods; chunked_no_compact = 32-lane WideSession::run per chunk with lane compaction off, chunked_compact = same chunks with compaction on, refill_steady = one run_refill drain (compaction + mid-sweep refill from the job queue); single-core, whole-stream wall clock, best of N; every job of every arm cross-checked bit-identical (outputs + stats) against its isolated sequential Session run before timing; acceptance bar: refill_steady >= 1.5x chunked_no_compact\","
    );
    let _ = writeln!(s, "  \"wide_tail\": {{");
    let _ = writeln!(s, "    \"arms\": [");
    for (i, r) in wide_tail.iter().enumerate() {
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"arm\": \"{}\",", r.arm);
        let _ = writeln!(s, "        \"wall_ns\": {},", r.wall_ns);
        let _ = writeln!(s, "        \"jobs_per_sec\": {:.0}", r.jobs_per_sec);
        let _ = writeln!(
            s,
            "      }}{}",
            if i + 1 < wide_tail.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"speedup_compact_vs_no_compact\": {wide_tail_compact:.3},"
    );
    let _ = writeln!(
        s,
        "    \"speedup_refill_vs_no_compact\": {wide_tail_refill:.3}"
    );
    let _ = writeln!(s, "  }},");
    // --- Serving layer: PoolServer batching drain vs session-per-job.
    let _ = writeln!(
        s,
        "  \"serve_throughput_note\": \"multi-tenant rumor job stream (2 highly-connected harary circulants, per-job sources/seeds/tenants, all wide-worthy) through the PoolServer batching drain (warm pooled states, compatible jobs grouped onto wide lane sweeps) vs one fresh Session per job (run_job_isolated); single-core, whole-stream wall clock, best of N; every job's outputs + stats cross-checked bit-identical against the isolated oracle before timing; acceptance bar: batched >= 2x session-per-job\","
    );
    let _ = writeln!(s, "  \"serve_throughput\": {{");
    let _ = writeln!(s, "    \"arms\": [");
    for (i, r) in serve.iter().enumerate() {
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"arm\": \"{}\",", r.arm);
        let _ = writeln!(s, "        \"wall_ns\": {},", r.wall_ns);
        let _ = writeln!(s, "        \"jobs_per_sec\": {:.0}", r.jobs_per_sec);
        let _ = writeln!(s, "      }}{}", if i + 1 < serve.len() { "," } else { "" });
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"speedup_batched_vs_session_per_job\": {serve_speedup:.3}"
    );
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    std::fs::write(path, s).expect("write BENCH_sim.json");
}

/// Print the wide-tail section and emit its regression marker; returns
/// the rows + speedups for the JSON export.
fn run_wide_tail_section() -> (Vec<WideTailRow>, f64, f64) {
    let (wide_tail, wide_tail_compact, wide_tail_refill) = bench_wide_tail();
    println!("\n| wide-tail arm | wall clock | jobs/sec |");
    println!("|---|---|---|");
    for r in &wide_tail {
        println!(
            "| {} | {:.3} ms | {:.0} |",
            r.arm,
            r.wall_ns as f64 / 1e6,
            r.jobs_per_sec
        );
    }
    println!(
        "wide-tail speedup vs the non-compacting chunked kernel: \
         compaction {wide_tail_compact:.2}x, compaction+refill {wide_tail_refill:.2}x"
    );
    // Continuous batching's acceptance bar: on a staggered-termination
    // mix, refilling retired slots from the queue (with the sweep
    // compacted) must beat chunked full-width runs by a wide margin,
    // smoke lane included.
    if wide_tail_refill < 1.5 {
        println!(
            "REGRESSION-MARKER: wide-tail speedup {wide_tail_refill:.3} < 1.5 — continuous \
             lane batching (compaction + refill) lost its advantage over the non-compacting \
             chunked kernel"
        );
    }
    (wide_tail, wide_tail_compact, wide_tail_refill)
}

/// Print the serve section and emit its regression marker; returns the
/// rows + speedup for the JSON export.
fn run_serve_section() -> (Vec<ServeRow>, f64) {
    let (serve, serve_speedup) = bench_serve();
    println!("\n| serve arm | wall clock | jobs/sec |");
    println!("|---|---|---|");
    for r in &serve {
        println!(
            "| {} | {:.3} ms | {:.0} |",
            r.arm,
            r.wall_ns as f64 / 1e6,
            r.jobs_per_sec
        );
    }
    println!("serve speedup (pool-batched vs one session per job): {serve_speedup:.2}x");
    // The serving layer's acceptance bar: batching compatible jobs onto
    // wide sweeps must at least double job throughput, smoke mix included.
    if serve_speedup < 2.0 {
        println!(
            "REGRESSION-MARKER: serve speedup {serve_speedup:.3} < 2.0 — pool batching lost \
             its advantage over one fresh session per job"
        );
    }
    (serve, serve_speedup)
}

fn bench_engine(c: &mut Criterion) {
    // `SIM_BENCH_SECTION=serve|wide_tail`: run only that section (CI's
    // smoke lanes), keep its cross-checks and marker, skip the rest.
    if let Ok(section) = std::env::var("SIM_BENCH_SECTION") {
        match section.as_str() {
            "serve" => {
                let _ = run_serve_section();
            }
            "wide_tail" => {
                let _ = run_wide_tail_section();
            }
            _ => panic!("unknown SIM_BENCH_SECTION `{section}`"),
        }
        println!("section mode: skipping remaining sections and BENCH_sim.json rewrite");
        return;
    }
    // --- Shard-scaling vs PR 1 (always runs; the smoke lane's guard).
    let (scaling, dense_geomean, sparse_geomean) = bench_shard_scaling();
    println!("\nper-round cost (ms/round), PR 1 engine vs sharded engine:");
    println!("\n| workload | graph | arcs | pr1 | 1 shard | 2 shards | 4 shards | 8 shards | speedup@4 |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for r in &scaling {
        print!(
            "| {} | {} | {} | {:.3} |",
            r.workload,
            r.graph,
            r.arcs,
            r.pr1_ns as f64 / 1e6
        );
        for &(_, ns) in &r.new_by_shards {
            print!(" {:.3} |", ns as f64 / 1e6);
        }
        println!(" {:.2}x |", r.speedup_at(4));
    }
    println!("\ndense-traffic geomean speedup vs PR 1 engine @ 4 shards: {dense_geomean:.2}x");
    println!("sparse-traffic geomean speedup vs PR 1 engine @ 4 shards: {sparse_geomean:.2}x");
    let bar = if smoke() { 1.0 } else { 1.5 };
    if dense_geomean < bar {
        println!(
            "REGRESSION-MARKER: dense geomean {dense_geomean:.3} < {bar:.1} vs the PR 1 engine"
        );
    }
    // Sparse parity is the fast path's acceptance bar; the smoke lane
    // gets slack for small-n noise but still trips on real regressions.
    let sparse_bar = if smoke() { 0.8 } else { 1.0 };
    if sparse_geomean < sparse_bar {
        println!(
            "REGRESSION-MARKER: sparse geomean {sparse_geomean:.3} < {sparse_bar:.1} vs the PR 1 engine"
        );
    }
    // --- Mux comparisons: ring layout and engine host.
    let mux_rings = bench_mux_rings();
    println!("\n| mux workload | graph | cap | frozen arm | live | frozen | speedup |");
    println!("|---|---|---|---|---|---|---|");
    for r in &mux_rings {
        println!(
            "| {} | {} | {} | {} | {:.3} ms | {:.3} ms | {:.2}x |",
            r.workload,
            r.graph,
            r.cap,
            r.frozen_arm,
            r.live_ns as f64 / 1e6,
            r.frozen_ns as f64 / 1e6,
            r.speedup()
        );
    }
    // --- Phase-reuse: session-hosted vs per-phase composition.
    let (phase_reuse, phase_reuse_geomean) = bench_phase_reuse();
    println!("\n| phase-reuse workload | graph | phases | session | per-phase | speedup |");
    println!("|---|---|---|---|---|---|");
    for r in &phase_reuse {
        println!(
            "| {} | {} | {} | {:.3} ms | {:.3} ms | {:.2}x |",
            r.workload,
            r.graph,
            r.phases,
            r.session_ns as f64 / 1e6,
            r.per_phase_ns as f64 / 1e6,
            r.speedup()
        );
    }
    println!(
        "phase-reuse geomean speedup (session-hosted vs per-phase): {phase_reuse_geomean:.2}x"
    );
    // Session hosting must never lose to per-phase composition; the
    // smoke lane gets slack for small-n noise on shared runners.
    let reuse_bar = if smoke() { 0.85 } else { 1.0 };
    if phase_reuse_geomean < reuse_bar {
        println!(
            "REGRESSION-MARKER: phase-reuse geomean {phase_reuse_geomean:.3} < {reuse_bar:.2} — \
             session hosting lost to per-phase engine rebuilds"
        );
    }
    // --- Churn repair: incremental phase-boundary repair vs full rebuild.
    let (churn_repair, churn_repair_geomean) = bench_churn_repair();
    println!("\n| churn-repair graph | batch edges | incremental | rebuild | speedup |");
    println!("|---|---|---|---|---|");
    for r in &churn_repair {
        println!(
            "| {} | {} | {:.3} ms | {:.3} ms | {:.2}x |",
            r.graph,
            r.batch,
            r.incremental_ns as f64 / 1e6,
            r.rebuild_ns as f64 / 1e6,
            r.speedup()
        );
    }
    println!("churn-repair geomean speedup (incremental vs rebuild): {churn_repair_geomean:.2}x");
    // Incremental repair must never lose to a from-scratch rebuild; the
    // smoke lane gets slack for small-n noise on shared runners.
    let churn_bar = if smoke() { 0.9 } else { 1.0 };
    if churn_repair_geomean < churn_bar {
        println!(
            "REGRESSION-MARKER: churn-repair geomean {churn_repair_geomean:.3} < {churn_bar:.2} — \
             incremental repair lost to full engine rebuilds"
        );
    }
    // --- Wide batch: W instances through one interleaved sweep.
    let (wide_batch, wide_batch_speedup_32) = bench_wide_batch();
    println!("\n| wide-batch lanes | wall clock | instances·rounds/sec | vs sequential |");
    println!("|---|---|---|---|");
    for r in &wide_batch {
        println!(
            "| {} | {:.3} ms | {:.0} | {:.2}x |",
            r.w,
            r.ns as f64 / 1e6,
            r.inst_rounds_per_sec,
            r.speedup_vs_seq
        );
    }
    println!(
        "wide-batch speedup at 32 lanes vs one sequential instance: {wide_batch_speedup_32:.2}x"
    );
    // The whole point of the wide kernel: amortizing the arc sweep
    // across lanes must beat running the lanes one at a time by a wide
    // margin, in the smoke lane too.
    if wide_batch_speedup_32 < 4.0 {
        println!(
            "REGRESSION-MARKER: wide-batch speedup {wide_batch_speedup_32:.3} < 4.0 at 32 lanes \
             vs the sequential arm"
        );
    }
    // --- Wide tail: staggered-termination stream, chunked vs continuous.
    let (wide_tail, wide_tail_compact, wide_tail_refill) = run_wide_tail_section();
    // --- Serving layer: pool-batched job stream vs session-per-job.
    let (serve, serve_speedup) = run_serve_section();
    if smoke() {
        println!("smoke mode: skipping baseline section and BENCH_sim.json rewrite");
        return;
    }

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(5);
    // The paper's regime is *highly connected* networks: high-degree
    // graphs, where per-arc message-plane costs dominate per-node
    // bookkeeping.
    let clique = complete(256);
    let hara = harary(16, 1024);

    let mut measurements = Vec::new();
    for (gname, g) in [("complete256", &clique), ("harary16_1024", &hara)] {
        measurements.push(measure("dense_u64", gname, g, |_| {
            DenseChatter::new(ROUNDS)
        }));
        measurements.push(measure("sparse_u64", gname, g, |v| {
            SparseChatter::new(v, ROUNDS)
        }));
        measurements.push(measure("wide_u128", gname, g, |_| WideChatter { acc: 1 }));
        measurements.push(measure("pipeline_u128", gname, g, |v| PipelineLike {
            node: v,
            acc: 1,
        }));
    }

    // Also surface the packed engine through the criterion harness for the
    // usual per-benchmark lines.
    for (gname, g) in [("complete256", &clique), ("harary16_1024", &hara)] {
        for parallel in [false, true] {
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(BenchmarkId::new(gname, label), g, |b, g| {
                b.iter(|| {
                    let cfg = if parallel {
                        EngineConfig::default()
                    } else {
                        EngineConfig::serial()
                    };
                    run_protocol(g, |_, _| DenseChatter::new(ROUNDS), cfg).unwrap()
                })
            });
        }
    }
    group.finish();

    println!(
        "\n| workload | graph | arcs | packed serial | packed parallel | baseline | speedup |"
    );
    println!("|---|---|---|---|---|---|---|");
    for m in &measurements {
        println!(
            "| {} | {} | {} | {:.2} ms | {:.2} ms | {:.2} ms | {:.2}x |",
            m.workload,
            m.graph,
            m.arcs,
            m.packed_serial_ns as f64 / 1e6,
            m.packed_parallel_ns as f64 / 1e6,
            m.baseline_ns as f64 / 1e6,
            m.speedup()
        );
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json");
    write_json(
        &measurements,
        &scaling,
        &mux_rings,
        &phase_reuse,
        &churn_repair,
        &wide_batch,
        &wide_tail,
        &serve,
        dense_geomean,
        sparse_geomean,
        phase_reuse_geomean,
        churn_repair_geomean,
        wide_batch_speedup_32,
        wide_tail_compact,
        wide_tail_refill,
        serve_speedup,
        &root,
    );
    println!("\nwrote {}", root.display());
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
