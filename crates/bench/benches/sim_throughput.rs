//! Engine-throughput bench: the packed message plane vs. the seed-style
//! `Vec<Option<Msg>>` slabs (kept as [`congest_sim::baseline`]), plus the
//! parallel-vs-serial check on the packed engine.
//!
//! Each workload implements both engine traits with identical logic, so
//! the measured difference is purely the message plane: packed words +
//! occupancy bitset + swap delivery vs. `Option` slabs + clear-then-clone.
//! Results are printed as criterion-style lines and exported to
//! `BENCH_sim.json` at the workspace root so later changes have a perf
//! trajectory to compare against.

use congest_graph::generators::{complete, harary};
use congest_graph::Graph;
use congest_sim::baseline::{run_baseline, BaselineCtx, BaselineProtocol};
use congest_sim::{run_protocol, EngineConfig, NodeCtx, Protocol};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::fmt::Write as _;
use std::time::Instant;

const ROUNDS: u64 = 200;

/// Dense traffic: every node sends a 64-bit counter on every port, every
/// round — the worst case for both planes (all arcs occupied).
#[derive(Clone)]
struct DenseChatter {
    acc: u64,
}

impl DenseChatter {
    fn step(&mut self, round: u64, inbox_sum: u64) -> Option<u64> {
        self.acc = self.acc.wrapping_add(inbox_sum);
        (round < ROUNDS).then_some(self.acc.wrapping_add(round))
    }
}

impl Protocol for DenseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
        match self.step(ctx.round, sum) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl BaselineProtocol for DenseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut BaselineCtx<'_, u64>) {
        let sum = ctx.inbox().map(|(_, &m)| m).fold(0u64, u64::wrapping_add);
        match self.step(ctx.round, sum) {
            Some(m) => ctx.send_all(m),
            None => ctx.set_done(true),
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Sparse traffic: ~1/16 of the nodes speak each round — the regime the
/// occupancy bitset is built for (quiescent arcs cost one bit, not an
/// `Option` clear + scan).
#[derive(Clone)]
struct SparseChatter {
    node: u32,
    acc: u64,
}

impl SparseChatter {
    fn speaks(&self, round: u64) -> bool {
        (self.node as u64).wrapping_add(round).is_multiple_of(16)
    }
}

impl Protocol for SparseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.acc = self
            .acc
            .wrapping_add(ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add));
        if ctx.round < ROUNDS {
            if self.speaks(ctx.round) {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl BaselineProtocol for SparseChatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut BaselineCtx<'_, u64>) {
        self.acc = self
            .acc
            .wrapping_add(ctx.inbox().map(|(_, &m)| m).fold(0u64, u64::wrapping_add));
        if ctx.round < ROUNDS {
            if self.speaks(ctx.round) {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Wide 96-bit messages (the broadcast pipeline's `(id, payload)` shape),
/// dense — exercises the `u128` slab.
#[derive(Clone)]
struct WideChatter {
    acc: u64,
}

impl Protocol for WideChatter {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        for (_, (id, payload)) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(id as u64 ^ payload);
        }
        if ctx.round < ROUNDS {
            ctx.send_all((ctx.node, self.acc));
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl BaselineProtocol for WideChatter {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut BaselineCtx<'_, (u32, u64)>) {
        let node = ctx.node;
        for (_, &(id, payload)) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(id as u64 ^ payload);
        }
        if ctx.round < ROUNDS {
            ctx.send_all((node, self.acc));
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// The broadcast algorithm's own traffic shape: wide `(id, payload)`
/// messages on a rotating ~1/8 of each node's ports — what pipelined
/// routing over λ′ edge-disjoint trees looks like on the wire.
#[derive(Clone)]
struct PipelineLike {
    node: u32,
    acc: u64,
}

impl PipelineLike {
    fn active(&self, port: u32, round: u64) -> bool {
        (self.node as u64 + port as u64 + round).is_multiple_of(8)
    }
}

impl Protocol for PipelineLike {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        for (_, (id, payload)) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(id as u64 ^ payload);
        }
        if ctx.round < ROUNDS {
            for p in 0..ctx.degree() as u32 {
                if self.active(p, ctx.round) {
                    ctx.send(p, (p, self.acc));
                }
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl BaselineProtocol for PipelineLike {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut BaselineCtx<'_, (u32, u64)>) {
        for (_, &(id, payload)) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(id as u64 ^ payload);
        }
        if ctx.round < ROUNDS {
            for p in 0..ctx.degree() as u32 {
                if self.active(p, ctx.round) {
                    ctx.send(p, (p, self.acc));
                }
            }
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

struct Measurement {
    workload: &'static str,
    graph: &'static str,
    arcs: usize,
    packed_serial_ns: u128,
    packed_parallel_ns: u128,
    baseline_ns: u128,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.packed_serial_ns as f64
    }
}

fn best_of<F: FnMut() -> u64>(samples: usize, mut f: F) -> u128 {
    let mut best = u128::MAX;
    let mut sink = 0u64;
    for _ in 0..samples {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(t.elapsed().as_nanos());
    }
    criterion::black_box(sink);
    best
}

fn measure<P>(
    name: &'static str,
    gname: &'static str,
    g: &Graph,
    make: impl Fn(u32) -> P + Copy,
) -> Measurement
where
    P: Protocol<Output = u64> + BaselineProtocol<Output = u64> + Clone,
{
    // Correctness cross-check before timing: both engines must agree.
    let packed = run_protocol(g, |v, _| make(v), EngineConfig::serial()).unwrap();
    let base = run_baseline::<P, _>(g, |v, _| make(v), 10 * ROUNDS);
    assert_eq!(
        packed.outputs, base.outputs,
        "{name}/{gname} outputs differ"
    );
    assert_eq!(packed.stats.rounds, base.rounds);
    assert_eq!(packed.stats.total_messages, base.total_messages);

    let samples = 7;
    let packed_serial_ns = best_of(samples, || {
        run_protocol(g, |v, _| make(v), EngineConfig::serial())
            .unwrap()
            .stats
            .total_messages
    });
    let packed_parallel_ns = best_of(samples, || {
        run_protocol(g, |v, _| make(v), EngineConfig::default())
            .unwrap()
            .stats
            .total_messages
    });
    let baseline_ns = best_of(samples, || {
        run_baseline::<P, _>(g, |v, _| make(v), 10 * ROUNDS).total_messages
    });
    Measurement {
        workload: name,
        graph: gname,
        arcs: g.num_arcs(),
        packed_serial_ns,
        packed_parallel_ns,
        baseline_ns,
    }
}

fn write_json(measurements: &[Measurement], path: &std::path::Path) {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"sim_throughput\",");
    let _ = writeln!(s, "  \"rounds_per_run\": {ROUNDS},");
    let _ = writeln!(
        s,
        "  \"note\": \"packed slab engine vs seed-style Vec<Option<Msg>> baseline on one core; ns = best of 7 whole-run samples; headline metric is geomean_speedup across workloads\","
    );
    let _ = writeln!(s, "  \"workloads\": [");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"workload\": \"{}\",", m.workload);
        let _ = writeln!(s, "      \"graph\": \"{}\",", m.graph);
        let _ = writeln!(s, "      \"arcs\": {},", m.arcs);
        let _ = writeln!(s, "      \"packed_serial_ns\": {},", m.packed_serial_ns);
        let _ = writeln!(s, "      \"packed_parallel_ns\": {},", m.packed_parallel_ns);
        let _ = writeln!(s, "      \"baseline_ns\": {},", m.baseline_ns);
        let _ = writeln!(
            s,
            "      \"speedup_packed_vs_baseline\": {:.3}",
            m.speedup()
        );
        let _ = writeln!(
            s,
            "    }}{}",
            if i + 1 < measurements.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let min = measurements
        .iter()
        .map(Measurement::speedup)
        .fold(f64::INFINITY, f64::min);
    let geomean = (measurements.iter().map(|m| m.speedup().ln()).sum::<f64>()
        / measurements.len() as f64)
        .exp();
    let _ = writeln!(s, "  \"min_speedup\": {min:.3},");
    let _ = writeln!(s, "  \"geomean_speedup\": {geomean:.3}");
    let _ = writeln!(s, "}}");
    std::fs::write(path, s).expect("write BENCH_sim.json");
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(5);
    // The paper's regime is *highly connected* networks: high-degree
    // graphs, where per-arc message-plane costs dominate per-node
    // bookkeeping.
    let clique = complete(256);
    let hara = harary(16, 1024);

    let mut measurements = Vec::new();
    for (gname, g) in [("complete256", &clique), ("harary16_1024", &hara)] {
        measurements.push(measure("dense_u64", gname, g, |_| DenseChatter { acc: 1 }));
        measurements.push(measure("sparse_u64", gname, g, |v| SparseChatter {
            node: v,
            acc: 1,
        }));
        measurements.push(measure("wide_u128", gname, g, |_| WideChatter { acc: 1 }));
        measurements.push(measure("pipeline_u128", gname, g, |v| PipelineLike {
            node: v,
            acc: 1,
        }));
    }

    // Also surface the packed engine through the criterion harness for the
    // usual per-benchmark lines.
    for (gname, g) in [("complete256", &clique), ("harary16_1024", &hara)] {
        for parallel in [false, true] {
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(BenchmarkId::new(gname, label), g, |b, g| {
                b.iter(|| {
                    let cfg = if parallel {
                        EngineConfig::default()
                    } else {
                        EngineConfig::serial()
                    };
                    run_protocol(g, |_, _| DenseChatter { acc: 1 }, cfg).unwrap()
                })
            });
        }
    }
    group.finish();

    println!(
        "\n| workload | graph | arcs | packed serial | packed parallel | baseline | speedup |"
    );
    println!("|---|---|---|---|---|---|---|");
    for m in &measurements {
        println!(
            "| {} | {} | {} | {:.2} ms | {:.2} ms | {:.2} ms | {:.2}x |",
            m.workload,
            m.graph,
            m.arcs,
            m.packed_serial_ns as f64 / 1e6,
            m.packed_parallel_ns as f64 / 1e6,
            m.baseline_ns as f64 / 1e6,
            m.speedup()
        );
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json");
    write_json(&measurements, &root);
    println!("\nwrote {}", root.display());
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
