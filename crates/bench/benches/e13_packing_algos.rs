//! Criterion bench comparing the three tree-packing constructions
//! (Theorem 2 partition, greedy Kruskal, exact matroid union) and the
//! scheduled multi-tree broadcast.

use congest_core::broadcast::BroadcastInput;
use congest_graph::generators::harary;
use congest_packing::greedy::random_disjoint_spanning_trees;
use congest_packing::matroid::{exact_tree_packing, matroid_forest_packing};
use congest_packing::random_partition::partition_packing_retrying;
use congest_packing::scheduled_broadcast::scheduled_packing_broadcast;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_packing_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_packing_algorithms");
    group.sample_size(10);
    let g = harary(16, 96);
    group.bench_function("partition_3_trees", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            partition_packing_retrying(&g, 3, 0, seed, 30).unwrap()
        })
    });
    group.bench_function("greedy_random_3_trees", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            random_disjoint_spanning_trees(&g, 3, seed)
        })
    });
    group.bench_function("matroid_exact_8_trees", |b| {
        b.iter(|| exact_tree_packing(&g, 8, 0).expect("⌊16/2⌋ trees"))
    });
    group.bench_function("matroid_forests_max", |b| {
        b.iter(|| matroid_forest_packing(&g, 8))
    });

    let packing = exact_tree_packing(&g, 4, 0).unwrap();
    let input = BroadcastInput::random_spread(&g, 192, 1);
    group.bench_function("scheduled_broadcast_4_trees_k192", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = scheduled_packing_broadcast(&g, &packing, &input, 4, seed).unwrap();
            assert!(out.all_delivered());
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_packing_algos);
criterion_main!(benches);
