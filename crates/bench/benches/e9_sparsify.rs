//! Criterion bench for E9 (Theorems 6–7): sparsifier construction and cut
//! evaluation.

use congest_graph::generators::complete;
use congest_graph::WeightedGraph;
use congest_sparsify::cuts::evaluate_cuts;
use congest_sparsify::koutis_xu::koutis_xu_unit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sparsify(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_sparsify");
    group.sample_size(10);
    let g = complete(96);
    for eps in [0.5f64, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("koutis_xu_K96", format!("{eps}")),
            &g,
            |b, g| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    koutis_xu_unit(g, eps, seed)
                })
            },
        );
    }
    let sp = koutis_xu_unit(&g, 0.5, 3);
    let wg = WeightedGraph::unit(g.clone());
    group.bench_function("evaluate_cuts_K96", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            evaluate_cuts(&wg, &sp, 32, seed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sparsify);
criterion_main!(benches);
