//! Criterion bench for E7 (Theorem 4): the full (3,2)-APSP pipeline.

use congest_apsp::unweighted_apsp_approx;
use congest_graph::generators::harary;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_apsp_unweighted");
    group.sample_size(10);
    for (lambda, n) in [(8usize, 64usize), (16, 96)] {
        let g = harary(lambda, n);
        group.bench_with_input(
            BenchmarkId::new("theorem4", format!("lam{lambda}_n{n}")),
            &g,
            |b, g| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    unweighted_apsp_approx(g, lambda, seed).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
