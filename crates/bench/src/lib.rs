//! # congest-bench — the experiment harness
//!
//! One binary per experiment (E1–E10, see DESIGN.md §5 and
//! EXPERIMENTS.md), each regenerating the series its theorem predicts and
//! printing a markdown table; plus Criterion wall-clock benches for the
//! heavy kernels.
//!
//! Run e.g. `cargo run --release -p congest-bench --bin exp_e3_broadcast`.

use std::fmt::Write as _;

/// A minimal markdown table builder for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as github-flavored markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "\n### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {c:>w$} |", w = w);
            }
            line
        };
        let _ = writeln!(s, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<w$}|", "", w = w + 2);
        }
        let _ = writeln!(s, "{sep}");
        for row in &self.rows {
            let _ = writeln!(s, "{}", fmt_row(row, &widths));
        }
        s
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float tersely.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// `⌈log₂ n⌉` helper used across experiments.
pub fn log2_ceil(n: usize) -> u32 {
    (n.max(1) as f64).log2().ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let out = t.render();
        assert!(out.contains("### demo"));
        assert!(out.contains("| a | bb |"));
        assert!(out.contains("| 1 |  2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.4), "123");
        assert_eq!(f(1.5), "1.50");
        assert_eq!(f(0.1234), "0.1234");
    }
}
