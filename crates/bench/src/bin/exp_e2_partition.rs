//! E2 — Theorem 2: the communication-free random partition into
//! `λ′ = λ/(C·ln n)` classes makes every class a spanning subgraph of
//! diameter `O(C·n·ln n/δ)` w.h.p.
//!
//! Series: per (family, λ′) — fraction of seeds where *all* classes span,
//! worst class diameter, and its ratio to the Theorem 2 bound. Also the
//! distributed round cost (partition = 1 round + parallel BFS rounds).

use congest_bench::{f, Table};
use congest_core::partition::{EdgePartition, PartitionParams};
use congest_graph::generators::{clique_chain, complete, harary, thick_path};
use congest_graph::Graph;
use congest_packing::random_partition::partition_packing_distributed;

fn main() {
    println!("# E2 — Theorem 2: random edge partition");
    println!("paper claim: all λ' classes span with diameter O(C·n·ln n/δ); distributed cost = 1 round + parallel BFS");

    let seeds: Vec<u64> = (0..10).collect();
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("harary λ=16, n=128", harary(16, 128), 16),
        ("harary λ=32, n=128", harary(32, 128), 32),
        ("harary λ=32, n=256", harary(32, 256), 32),
        ("K_128 (λ=127)", complete(128), 127),
        ("thick_path L=12 λ=16", thick_path(12, 16), 16),
        ("clique_chain 5×32 b=12", clique_chain(5, 32, 12), 12),
    ];

    let mut t = Table::new(
        "Theorem 2 partition (10 seeds per row)",
        &[
            "family",
            "λ'",
            "all-span%",
            "worstD",
            "D·δ/(n·lnn)",
            "bfs rounds",
        ],
    );
    for (name, g, lambda) in &cases {
        let n = g.n() as f64;
        let delta = g.min_degree() as f64;
        for c in [2.0, 4.0] {
            let lp = PartitionParams::from_lambda(g.n(), *lambda, c).num_subgraphs;
            if lp < 2 {
                continue;
            }
            let mut all_span = 0usize;
            let mut worst_d = 0u32;
            let mut bfs_rounds = 0u64;
            for &s in &seeds {
                let part = EdgePartition::compute(g, PartitionParams::explicit(lp), 0xE2 ^ s);
                let diams = part.subgraph_diameters(g);
                if diams.iter().all(|d| d.is_some()) {
                    all_span += 1;
                    worst_d = worst_d.max(diams.iter().map(|d| d.unwrap()).max().unwrap());
                }
                if s == 0 {
                    if let Ok((_, phases)) = partition_packing_distributed(g, lp, 0, 0xE2 ^ s) {
                        bfs_rounds = phases.rounds_of("subgraph-bfs").unwrap_or(0);
                    }
                }
            }
            t.row(vec![
                name.to_string(),
                format!("{lp}"),
                format!("{}", all_span * 100 / seeds.len()),
                format!("{worst_d}"),
                f(worst_d as f64 * delta / (n * n.ln())),
                format!("{bfs_rounds}"),
            ]);
        }
    }
    t.print();
    println!("\nshape check: all-span% ≈ 100; normalized worst diameter O(1); BFS rounds track worst diameter.");
}
