//! E4 — §3.2: the combined bound `min{O(D+k), Õ((n+k)/λ)}` and the
//! empirical crossover k*(λ) where the partition broadcast overtakes the
//! textbook algorithm.
//!
//! Series: for each λ, scan k and report the first k where Theorem 1's
//! measured rounds drop below the textbook's. Higher λ ⇒ earlier
//! crossover (more parallel trees amortize the log-factor overhead).

use congest_bench::{f, Table};
use congest_core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastInput, DEFAULT_PARTITION_C,
};
use congest_core::partition::PartitionParams;
use congest_core::textbook::textbook_broadcast;
use congest_graph::generators::harary;

fn main() {
    println!("# E4 — crossover between textbook and Theorem 1");
    println!("paper claim: broadcast solvable in min{{O(D+k), Õ((n+k)/λ)}}; crossover k* shrinks as λ grows");

    let n = 144usize;
    let mut t = Table::new(
        "crossover scan (n = 144, k doubling)",
        &["λ", "λ'", "k", "thm1", "textbook", "winner"],
    );
    for lambda in [8usize, 16, 32, 48] {
        let g = harary(lambda, n);
        let params = PartitionParams::from_lambda(n, lambda, DEFAULT_PARTITION_C);
        let mut crossover: Option<usize> = None;
        let mut k = n / 4;
        while k <= 16 * n {
            let input = BroadcastInput::random_spread(&g, k, 0xE4);
            let (out, _) = partition_broadcast_retrying(
                &g,
                &input,
                params,
                &BroadcastConfig::with_seed(0xE4),
                20,
            )
            .expect("broadcast");
            let tb = textbook_broadcast(&g, &input, 0xE4).expect("textbook");
            let winner = if out.total_rounds < tb.total_rounds {
                "thm1"
            } else {
                "textbook"
            };
            if winner == "thm1" && crossover.is_none() {
                crossover = Some(k);
            }
            t.row(vec![
                format!("{lambda}"),
                format!("{}", out.num_subgraphs),
                format!("{k}"),
                format!("{}", out.total_rounds),
                format!("{}", tb.total_rounds),
                winner.to_string(),
            ]);
            k *= 2;
        }
        println!(
            "λ = {lambda:>2}: crossover k* = {}",
            crossover.map_or("none in range".into(), |k| format!(
                "{k} (k/n = {})",
                f(k as f64 / n as f64)
            ))
        );
    }
    t.print();
    println!("\nshape check: for fixed n, k* decreases (or winner flips earlier) as λ increases.");
}
