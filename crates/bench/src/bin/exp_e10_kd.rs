//! E10 — Lemma 9 + Theorem 12: (k,d)-connectivity certificates and
//! random-delay scheduling.
//!
//! Sub-table 1 (Lemma 9): every simple graph is `(λ/5, 16n/δ)`-connected —
//! greedy disjoint-path certificates across families and node pairs.
//!
//! Sub-table 2 (Theorem 12): running `q` flood protocols multiplexed over
//! one network with random delays; total rounds must behave like
//! `O(congestion + dilation·log² n)`, far below `q × dilation`.

use congest_bench::{f, Table};
use congest_graph::generators::{clique_chain, complete, harary, thick_path, torus2d};
use congest_graph::{Graph, Node};
use congest_packing::kd_connectivity::kd_certificates;
use congest_sim::sched::{random_delays, Multiplexed};
use congest_sim::{run_protocol, EngineConfig, NodeCtx, Protocol};

fn main() {
    println!("# E10 — Lemma 9 certificates & Theorem 12 scheduling");

    // --- Lemma 9.
    println!("\npaper claim (Lemma 9): every simple graph is (λ/5, 16n/δ)-connected");
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("harary λ=10 n=80", harary(10, 80), 10),
        ("harary λ=20 n=120", harary(20, 120), 20),
        ("K_64", complete(64), 63),
        ("torus 8×8", torus2d(8, 8), 4),
        ("thick_path 10×12", thick_path(10, 12), 12),
        ("clique_chain 4×20 b=10", clique_chain(4, 20, 10), 10),
    ];
    let mut t1 = Table::new(
        "Lemma 9 greedy certificates (24 pairs each)",
        &[
            "family",
            "claim k",
            "claim d",
            "certified%",
            "min paths ≤ d",
            "max needed len",
        ],
    );
    for (name, g, lambda) in &cases {
        let report = kd_certificates(g, *lambda, 24, 0xE10);
        t1.row(vec![
            name.to_string(),
            format!("{}", report.claim.k),
            format!("{}", report.claim.d),
            format!("{}", report.certified * 100 / report.pairs),
            format!("{}", report.min_paths_within_d),
            format!("{}", report.max_needed_length),
        ]);
    }
    t1.print();

    // --- Theorem 12.
    println!("\npaper claim (Thm 12): q algorithms run together in O(congestion + dilation·log² n) rounds");
    let g = harary(8, 96);
    let solo = run_protocol(&g, |v, _| Flood::new(0, v), EngineConfig::default())
        .unwrap()
        .stats
        .rounds;
    let mut t2 = Table::new(
        format!("multiplexed floods on harary λ=8 n=96 (solo dilation = {solo})"),
        &[
            "q floods",
            "delay range",
            "total rounds",
            "q × dilation",
            "ratio",
        ],
    );
    for q in [4usize, 8, 16, 32] {
        let max_delay = (q as u64) / 2;
        let delays = random_delays(q, max_delay, 0xE10);
        let out = run_protocol(
            &g,
            |v, gr: &Graph| {
                let floods: Vec<Flood> = (0..q)
                    .map(|i| Flood::new((i * 7 % gr.n()) as Node, v))
                    .collect();
                // One-shot floods: per-edge congestion ≤ q (Theorem 12).
                Multiplexed::new(floods, &delays, gr.degree(v), q)
            },
            EngineConfig::default(),
        )
        .expect("multiplexed run");
        for (flags, _) in &out.outputs {
            assert!(flags.iter().all(|&x| x), "all floods must complete");
        }
        let naive = q as u64 * solo;
        t2.row(vec![
            format!("{q}"),
            format!("0..={max_delay}"),
            format!("{}", out.stats.rounds),
            format!("{naive}"),
            f(naive as f64 / out.stats.rounds as f64),
        ]);
    }
    t2.print();
    println!("\nshape check: certified% = 100 everywhere; scheduled rounds ≪ q×dilation and the ratio grows with q.");
}

/// A message-driven flood (delay-tolerant, as Theorem 12 requires).
struct Flood {
    informed: bool,
    relayed: bool,
}

impl Flood {
    fn new(source: Node, me: Node) -> Self {
        Flood {
            informed: source == me,
            relayed: false,
        }
    }
}

impl Protocol for Flood {
    type Msg = ();
    type Output = bool;
    fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
        if ctx.inbox_len() > 0 {
            self.informed = true;
        }
        if self.informed && !self.relayed {
            ctx.send_all(());
            self.relayed = true;
        }
        ctx.set_done(self.relayed);
    }
    fn finish(self) -> bool {
        self.informed
    }
}
