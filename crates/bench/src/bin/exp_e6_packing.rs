//! E6 — §3.1 + Theorem 10 + Theorem 13: tree packings.
//!
//! Three sub-tables:
//! 1. Theorem 2 packings: λ′ edge-disjoint spanning trees with diameter
//!    `O(n·ln n/δ)` on standard families;
//! 2. Theorem 10 point: λ trees with congestion O(log n) via sampling;
//! 3. Theorem 13 tension on the GK13-style family: graph diameter
//!    O(log n) yet packing diameter Ω(n/λ).

use congest_bench::{f, Table};
use congest_graph::generators::{clique_chain, harary, thick_path};
use congest_graph::Graph;
use congest_packing::fractional::ghaffari_comparison;
use congest_packing::lower_bound_family::measure_gk13;
use congest_packing::random_partition::partition_packing_retrying;
use congest_packing::sampled::{lemma5_probability, sampled_packing};

fn main() {
    println!("# E6 — low-diameter tree packings");

    // --- Table 1: Theorem 2 edge-disjoint packings.
    println!("\npaper claim (§3.1): Ω(λ/log n) edge-disjoint spanning trees, diameter O(n·ln n/δ)");
    let cases: Vec<(&str, Graph, usize, usize)> = vec![
        ("harary λ=16 n=128", harary(16, 128), 16, 3),
        ("harary λ=32 n=128", harary(32, 128), 32, 4),
        ("harary λ=32 n=256", harary(32, 256), 32, 4),
        ("thick_path 12×16", thick_path(12, 16), 16, 2),
        ("clique_chain 5×24 b=12", clique_chain(5, 24, 12), 12, 2),
    ];
    let mut t1 = Table::new(
        "Theorem 2 packings",
        &[
            "family",
            "trees",
            "disjoint",
            "maxD",
            "D·δ/(n·lnn)",
            "ghaffari wr",
            "ghaffari dr",
        ],
    );
    for (name, g, lambda, trees) in &cases {
        let (packing, _, _) = partition_packing_retrying(g, *trees, 0, 0xE6, 30).expect("packing");
        packing.validate(g).unwrap();
        let stats = packing.stats(g);
        let n = g.n() as f64;
        let delta = g.min_degree() as f64;
        let cmp = ghaffari_comparison(&packing, g, 2 * g.n(), *lambda);
        t1.row(vec![
            name.to_string(),
            format!("{}", stats.num_trees),
            format!("{}", stats.edge_disjoint),
            format!("{}", stats.max_diameter),
            f(stats.max_diameter as f64 * delta / (n * n.ln())),
            f(cmp.weight_ratio),
            f(cmp.diameter_ratio),
        ]);
    }
    t1.print();

    // --- Table 2: Theorem 10 sampled packings.
    println!("\npaper claim (Thm 10): λ spanning trees, diameter O(n·ln n/δ), congestion O(log n)");
    let mut t2 = Table::new(
        "sampled packings (λ trees)",
        &[
            "family",
            "trees",
            "congestion",
            "ln n",
            "maxD",
            "D·δ/(n·lnn)",
        ],
    );
    for (name, g, lambda, _) in &cases {
        let p = lemma5_probability(g.n(), *lambda, 2.0);
        let report = sampled_packing(g, *lambda, p, 0, 0xE6).expect("sampled packing");
        let stats = report.packing.stats(g);
        let n = g.n() as f64;
        let delta = g.min_degree() as f64;
        t2.row(vec![
            name.to_string(),
            format!("{}", stats.num_trees),
            format!("{}", stats.congestion),
            f(n.ln()),
            format!("{}", stats.max_diameter),
            f(stats.max_diameter as f64 * delta / (n * n.ln())),
        ]);
    }
    t2.print();

    // --- Table 3: Theorem 13 tension on the GK13-style family (greedy
    // edge-disjoint extraction — λ here is deliberately below the random
    // partition's log n regime).
    println!("\npaper claim (Thm 13/GK13): graph diameter O(log n) but packing diameter Ω(n/λ), with ≤ O(log n) short trees");
    let mut t3 = Table::new(
        "GK13-style lower-bound family (2 greedy edge-disjoint trees)",
        &[
            "columns",
            "λ",
            "n",
            "graph D",
            "packing maxD",
            "short trees",
            "n/λ",
            "blowup",
        ],
    );
    for columns in [16usize, 32, 64, 96] {
        let lambda = 6;
        let report = measure_gk13(columns, lambda, 2, 0xE6).expect("gk13");
        t3.row(vec![
            format!("{columns}"),
            format!("{lambda}"),
            format!("{}", report.layout.n),
            format!("{}", report.graph_diameter),
            format!("{}", report.packing.max_diameter),
            format!("{}", report.short_trees),
            f(report.n_over_lambda),
            f(report.blowup),
        ]);
    }
    t3.print();
    println!("\nshape check: graph D grows ~log, packing maxD grows ~linearly with columns — the Θ̃(n/λ) wall;");
    println!(
        "at most ~1 tree stays short (the thin overlay serves one extraction, as GK13 predict)."
    );
}
