//! E1 — Lemma 5: random edge sampling at `p = C·ln n/λ` yields a spanning
//! subgraph of diameter `O(C·n·ln n/δ)` w.h.p.
//!
//! Series: for each (family, C), over many seeds — fraction of samples
//! that span, their max diameter, and the diameter normalized by the
//! lemma's bound `C·n·ln n/δ` (should be a small constant, flat across n).

use congest_bench::{f, Table};
use congest_core::partition::sample_edges;
use congest_graph::algo::components::is_spanning_connected;
use congest_graph::algo::diameter::diameter_exact_restricted;
use congest_graph::generators::{clique_chain, harary, thick_path};
use congest_graph::Graph;

fn main() {
    println!("# E1 — Lemma 5: sampled-subgraph diameter");
    println!("paper claim: p = C·ln n/λ ⇒ spanning, diameter O(C·n·ln n/δ), failure n^-Ω(C)");

    let seeds: Vec<u64> = (0..10).collect();
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("harary λ=8, n=128", harary(8, 128), 8),
        ("harary λ=16, n=128", harary(16, 128), 16),
        ("harary λ=16, n=256", harary(16, 256), 16),
        ("harary λ=32, n=256", harary(32, 256), 32),
        ("thick_path L=16 λ=12", thick_path(16, 12), 12),
        ("clique_chain 6×24 b=8", clique_chain(6, 24, 8), 8),
    ];

    let mut t = Table::new(
        "Lemma 5 sampling (10 seeds per row)",
        &[
            "family",
            "C",
            "p",
            "span%",
            "maxD",
            "meanD",
            "D·δ/(C·n·lnn)",
        ],
    );
    for (name, g, lambda) in &cases {
        let n = g.n() as f64;
        let delta = g.min_degree() as f64;
        for c in [1.0, 2.0, 4.0] {
            let p = (c * n.ln() / *lambda as f64).min(1.0);
            let mut spanned = 0usize;
            let mut diams = Vec::new();
            for &s in &seeds {
                let mask = sample_edges(g, p, 0xE1 ^ s);
                if is_spanning_connected(g, |e| mask[e as usize]) {
                    spanned += 1;
                    if let Some(d) = diameter_exact_restricted(g, &mask) {
                        diams.push(d as f64);
                    }
                }
            }
            let max_d = diams.iter().cloned().fold(0.0, f64::max);
            let mean_d = if diams.is_empty() {
                0.0
            } else {
                diams.iter().sum::<f64>() / diams.len() as f64
            };
            let bound = c * n * n.ln() / delta;
            t.row(vec![
                name.to_string(),
                f(c),
                f(p),
                format!("{}", spanned * 100 / seeds.len()),
                f(max_d),
                f(mean_d),
                f(max_d / bound),
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: span% → 100 as C grows; normalized diameter stays O(1) and flat in n."
    );
}
