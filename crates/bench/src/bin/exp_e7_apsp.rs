//! E7 — Theorem 4: (3,2)-approximate unweighted APSP in `Õ(n/λ)` rounds.
//!
//! Series: across families — the *verified* approximation quality (worst
//! multiplicative stretch after subtracting the +2 additive slack; must be
//! ≤ 3) and the measured+charged round count against the `n·ln n/λ`
//! scale.

use congest_apsp::unweighted_apsp_approx;
use congest_bench::{f, Table};
use congest_graph::algo::apsp::{apsp_unweighted, measure_stretch_unweighted};
use congest_graph::generators::{complete, harary, torus2d};
use congest_graph::Graph;

fn main() {
    println!("# E7 — (3,2)-approximate unweighted APSP");
    println!("paper claim: d ≤ d̃ ≤ 3d+2 for all pairs, Õ(n/λ) rounds total");

    let cases: Vec<(&str, Graph, usize)> = vec![
        ("harary λ=8 n=64", harary(8, 64), 8),
        ("harary λ=16 n=96", harary(16, 96), 16),
        ("harary λ=16 n=160", harary(16, 160), 16),
        ("harary λ=32 n=160", harary(32, 160), 32),
        ("torus 8×8", torus2d(8, 8), 4),
        ("K_96", complete(96), 95),
    ];

    let mut t = Table::new(
        "Theorem 4 quality and cost",
        &[
            "family",
            "clusters",
            "worst α (≤3)",
            "rounds",
            "rounds/(n·lnn/λ)",
        ],
    );
    for (name, g, lambda) in &cases {
        let out = unweighted_apsp_approx(g, *lambda, 0xE7).expect("apsp");
        let exact = apsp_unweighted(g);
        let alpha = measure_stretch_unweighted(&exact, &out.estimate, 2)
            .expect("estimates must dominate distances");
        assert!(alpha <= 3.0 + 1e-9, "(3,2) violated on {name}");
        let n = g.n() as f64;
        let scale = n * n.ln() / *lambda as f64;
        t.row(vec![
            name.to_string(),
            format!("{}", out.cluster_graph.centers.len()),
            f(alpha),
            format!("{}", out.total_rounds),
            f(out.total_rounds as f64 / scale),
        ]);
    }
    t.print();
    println!(
        "\nshape check: α never exceeds 3; normalized rounds stay O(1)·polylog across families."
    );
}
