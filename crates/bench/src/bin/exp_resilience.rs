//! E13 — §1.2 (secure distributed computing): resilience of the
//! tree-packing broadcast under a mobile edge adversary, as a function of
//! the replication factor across the packing's trees.
//!
//! \[FP23\] need exactly Theorem 2's packings to compile algorithms against
//! f-mobile adversaries. The broadcast instantiation: replicate each
//! message over r edge-disjoint trees; the adversary must sever all r
//! routes. Series: starved-node counts vs (fault budget f, replication r).

use congest_bench::Table;
use congest_core::broadcast::{BroadcastConfig, BroadcastInput};
use congest_core::partition::PartitionParams;
use congest_core::resilient::resilient_broadcast;
use congest_graph::generators::harary;
use congest_sim::FaultPlan;

fn main() {
    println!("# E13 — broadcast vs a mobile edge adversary (replication over the packing)");
    println!("paper context (§1.2/[FP23]): λ-tree packings enable f-mobile resilience, f = Θ̃(λ)");

    let g = harary(24, 96);
    let input = BroadcastInput::random_spread(&g, 96, 0xE13);
    let params = PartitionParams::explicit(4);

    let mut t = Table::new(
        "starved nodes (out of 96) after routing under attack — 3 seeds each",
        &["faults/round", "r=1", "r=2", "r=4", "dropped msgs (r=4)"],
    );
    for f in [0usize, 2, 4, 8] {
        let mut starved = [0usize; 3];
        let mut dropped = 0u64;
        for (ri, r) in [1usize, 2, 4].iter().enumerate() {
            for seed in 0..3u64 {
                let faults = (f > 0).then(|| FaultPlan::new(f, 0xBAD ^ seed));
                // Retry over the (rare) Theorem 2 NotSpanning event with a
                // fresh partition seed, like the plain broadcast wrapper.
                let out = (0..20u64)
                    .find_map(|attempt| {
                        resilient_broadcast(
                            &g,
                            &input,
                            params,
                            *r,
                            faults,
                            &BroadcastConfig::with_seed(
                                (0xE13 ^ seed).wrapping_add(attempt * 0x9E37),
                            ),
                        )
                        .ok()
                    })
                    .expect("resilient broadcast (20 partition attempts)");
                starved[ri] += out.starved_nodes().len();
                if *r == 4 {
                    dropped += out.dropped;
                }
            }
        }
        t.row(vec![
            format!("{f}"),
            format!("{}", starved[0]),
            format!("{}", starved[1]),
            format!("{}", starved[2]),
            format!("{}", dropped / 3),
        ]);
    }
    t.print();
    println!("\nshape check: starvation grows with f and shrinks to zero as r grows — replication across");
    println!("edge-disjoint trees buys fault tolerance, the mechanism [FP23] industrialize.");
}
