//! E9 — Theorems 6–7: the sparsifier preserves all cuts within (1±ε) with
//! `Õ(n/ε²)` edges, broadcast in `Õ(n/(λ·ε²))` rounds.
//!
//! Series: ε sweep — sparsifier size (growing as 1/ε²), the empirically
//! measured worst cut error over random/singleton/ball cuts plus the
//! min-cut comparison, and the measured broadcast rounds.

use congest_bench::{f, Table};
use congest_graph::generators::{complete, harary};
use congest_graph::WeightedGraph;
use congest_sparsify::cuts::theorem7_all_cuts;

fn main() {
    println!("# E9 — (1±ε) all-cuts approximation via sparsifier broadcast");
    println!("paper claim: Õ(n/ε²) edges, every cut within (1±ε), Õ(n/(λε²)) rounds");

    let cases: Vec<(&str, WeightedGraph, usize)> = vec![
        ("harary λ=24 n=96", WeightedGraph::unit(harary(24, 96)), 24),
        ("K_96", WeightedGraph::unit(complete(96)), 95),
        ("K_160", WeightedGraph::unit(complete(160)), 159),
    ];

    let mut t = Table::new(
        "ε sweep",
        &[
            "family",
            "m",
            "ε",
            "sparsifier m̃",
            "measured ε̂",
            "mincut G",
            "mincut H",
            "rounds",
        ],
    );
    for (name, g, lambda) in &cases {
        for eps in [0.8, 0.5, 0.3] {
            let out = theorem7_all_cuts(g, eps, *lambda, 0xE9).expect("theorem 7");
            t.row(vec![
                name.to_string(),
                format!("{}", g.m()),
                f(eps),
                format!("{}", out.sparsifier_edges),
                f(out.quality.empirical_eps()),
                f(out.quality.min_cut_g),
                f(out.quality.min_cut_h),
                format!("{}", out.total_rounds),
            ]);
        }
    }
    t.print();
    println!("\nshape check: m̃ grows as ε shrinks; measured ε̂ tracks (and respects the trend of) the target ε; dense graphs compress hardest.");
}
