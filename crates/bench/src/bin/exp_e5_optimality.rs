//! E5 — Theorem 3 + §3.2: universal optimality in the `k = Ω(n)` regime.
//!
//! Any algorithm needs `Ω(k/λ)` rounds (Theorem 3, information-theoretic,
//! holds for every graph). Theorem 1's measured rounds divided by that
//! bound must therefore stay `O(log n)` — the universal-optimality ratio.
//!
//! Series: across families and sizes at `k = 2n`, report measured rounds,
//! the Theorem 3 bound, their ratio, and the ratio normalized by ln n
//! (should be a flat constant).

use congest_bench::{f, Table};
use congest_core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastInput, DEFAULT_PARTITION_C,
};
use congest_core::lower_bounds::theorem3_broadcast_lb;
use congest_core::partition::PartitionParams;
use congest_graph::generators::{clique_chain, complete, harary};
use congest_graph::Graph;

fn main() {
    println!("# E5 — universal optimality ratio (k = 2n)");
    println!("paper claim: rounds / Ω(k/λ) = O(log n) for every graph");

    let cases: Vec<(&str, Graph, usize)> = vec![
        ("harary λ=16 n=96", harary(16, 96), 16),
        ("harary λ=16 n=192", harary(16, 192), 16),
        ("harary λ=32 n=192", harary(32, 192), 32),
        ("harary λ=48 n=288", harary(48, 288), 48),
        ("K_96", complete(96), 95),
        ("clique_chain 4×32 b=16", clique_chain(4, 32, 16), 16),
    ];

    let mut t = Table::new(
        "optimality ratios",
        &[
            "family",
            "n",
            "k",
            "rounds",
            "LB k/(2λ)",
            "ratio",
            "ratio/ln n",
        ],
    );
    for (name, g, lambda) in &cases {
        let n = g.n();
        let k = 2 * n;
        let input = BroadcastInput::random_spread(g, k, 0xE5);
        let params = PartitionParams::from_lambda(n, *lambda, DEFAULT_PARTITION_C);
        let (out, _) =
            partition_broadcast_retrying(g, &input, params, &BroadcastConfig::with_seed(0xE5), 20)
                .expect("broadcast");
        assert!(out.all_delivered());
        let lb = theorem3_broadcast_lb(k as u64, *lambda as u64);
        let ratio = out.total_rounds as f64 / lb;
        t.row(vec![
            name.to_string(),
            format!("{n}"),
            format!("{k}"),
            format!("{}", out.total_rounds),
            f(lb),
            f(ratio),
            f(ratio / (n as f64).ln()),
        ]);
    }
    t.print();
    println!("\nshape check: 'ratio/ln n' is flat across rows — the O(log n) universal-optimality factor.");
}
