//! E11 — Theorem 9 (§4.4): the weighted lower-bound family, demonstrated
//! constructively.
//!
//! The crafted graph hides `k_max = Θ(log n/log α)` digits per node behind
//! edge weights; *any* α-approximate APSP solution at `v₁` reveals them
//! all, so `Ω(n·log k_max / (λ·log n)) = Ω(n/(λ·log α))` rounds are
//! unavoidable. We demonstrate the decoding both from exact distances and
//! from the **actual Theorem 5 estimates** (stretch 2k−1 = α), and tabulate
//! how the hidden information shrinks as α grows — the lower bound's
//! trade-off curve.

use congest_apsp::weighted_apsp_approx;
use congest_bench::{f, Table};
use congest_core::lower_bounds::theorem9_weighted_apsp_lb;
use congest_graph::algo::apsp::dijkstra;
use congest_graph::generators::{decode_theorem9, theorem9_instance};

fn main() {
    println!("# E11 — Theorem 9: weighted APSP lower-bound family");
    println!("paper claim: α-approx weighted APSP needs Ω(n/(λ·log α)) rounds; the instance encodes k_max digits/node");

    let n = 48usize;
    let lambda = 6usize;

    let mut t = Table::new(
        format!("α sweep on the crafted instance (n = {n}, λ = {lambda})"),
        &[
            "α",
            "base B",
            "k_max",
            "decode@exact",
            "decode@α-stretch",
            "LB rounds",
        ],
    );
    for alpha in [1.5, 2.0, 3.0, 5.0, 9.0] {
        let inst = theorem9_instance(n, lambda, alpha, 2.0, 0xE11);
        let exact = dijkstra(&inst.graph, 0);
        let ok_exact = decode_theorem9(&inst, &exact)[2..] == inst.hidden_k[2..];
        let stretched: Vec<f64> = exact.iter().map(|&d| d * alpha).collect();
        let ok_stretch = decode_theorem9(&inst, &stretched)[2..] == inst.hidden_k[2..];
        let lb = theorem9_weighted_apsp_lb(n as u64, lambda as u64, alpha, 2.0);
        t.row(vec![
            f(alpha),
            format!("{}", inst.base),
            format!("{}", inst.k_max),
            format!("{ok_exact}"),
            format!("{ok_stretch}"),
            f(lb),
        ]);
    }
    t.print();

    // The real-algorithm corroboration: Theorem 5's spanner-based APSP at
    // k = 2 has stretch ≤ 3; its estimates must decode the α = 3 instance.
    println!("\ncorroboration: decode from the real Theorem 5 estimates (k = 2 ⇒ α = 3)");
    let inst = theorem9_instance(32, 6, 3.0, 2.0, 0xE11 + 1);
    let out = weighted_apsp_approx(&inst.graph, 2, lambda, 0xE11).expect("theorem 5 run");
    let decoded = decode_theorem9(&inst, &out.estimate[0]);
    let ok = decoded[2..] == inst.hidden_k[2..];
    println!(
        "  spanner edges broadcast: {}, rounds: {}, hidden digits recovered: {ok}",
        out.spanner_edges, out.total_rounds
    );
    assert!(ok, "Theorem 5 estimates must decode the instance");
    println!("\nshape check: k_max (hidden digits/node) shrinks as α grows — the log α in the denominator.");
}
