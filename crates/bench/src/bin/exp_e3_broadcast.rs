//! E3 — Theorem 1: k-broadcast in `O((n·ln n)/δ + (k·ln n)/λ)` rounds,
//! versus the textbook `O(D + k)` baseline — both as real message passing.
//!
//! Series: fix families, sweep k; report measured rounds for both
//! algorithms and the ratio to the theorem's formula. Theorem 1's rounds
//! should scale ~k/λ′ while the textbook scales ~k.

use congest_bench::{f, Table};
use congest_core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastInput, DEFAULT_PARTITION_C,
};
use congest_core::partition::PartitionParams;
use congest_core::textbook::textbook_broadcast;
use congest_graph::generators::harary;
use congest_graph::Graph;

fn main() {
    println!("# E3 — Theorem 1 broadcast vs textbook baseline");
    println!("paper claim: Õ((n+k)/λ) rounds vs O(D+k); partition wins once k ≫ D·λ'");

    let cases: Vec<(&str, Graph, usize)> = vec![
        ("harary λ=16, n=96", harary(16, 96), 16),
        ("harary λ=32, n=96", harary(32, 96), 32),
        ("harary λ=32, n=192", harary(32, 192), 32),
    ];

    let mut t = Table::new(
        "k-broadcast rounds (messages spread uniformly)",
        &[
            "family",
            "k",
            "λ'",
            "thm1 rounds",
            "textbook rounds",
            "speedup",
            "thm1/formula",
        ],
    );
    for (name, g, lambda) in &cases {
        let n = g.n();
        let params = PartitionParams::from_lambda(n, *lambda, DEFAULT_PARTITION_C);
        for mult in [1usize, 2, 4, 8] {
            let k = n * mult;
            let input = BroadcastInput::random_spread(g, k, 0xE3);
            let (out, _) = partition_broadcast_retrying(
                g,
                &input,
                params,
                &BroadcastConfig::with_seed(0xE3),
                20,
            )
            .expect("broadcast");
            assert!(out.all_delivered());
            let tb = textbook_broadcast(g, &input, 0xE3).expect("textbook");
            assert!(tb.all_delivered());
            let ln_n = (n as f64).ln();
            let formula =
                (n as f64 * ln_n) / g.min_degree() as f64 + (k as f64 * ln_n) / *lambda as f64;
            t.row(vec![
                name.to_string(),
                format!("{k}"),
                format!("{}", out.num_subgraphs),
                format!("{}", out.total_rounds),
                format!("{}", tb.total_rounds),
                f(tb.total_rounds as f64 / out.total_rounds as f64),
                f(out.total_rounds as f64 / formula),
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: speedup grows with k and with λ; thm1/formula stays a flat O(1) constant."
    );
}
