//! E8 — Theorem 5 / Corollary 1: (2k−1)-approximate weighted APSP in
//! `Õ(n^{1+1/k}/λ)` rounds via spanner broadcast.
//!
//! Series: sweep the stretch parameter k — verified stretch vs the 2k−1
//! budget, spanner size vs the `k·n^{1+1/k}` law, and measured broadcast
//! rounds shrinking as the spanner shrinks.

use congest_apsp::baswana_sen::corollary1_k;
use congest_apsp::weighted_apsp_approx;
use congest_bench::{f, Table};
use congest_graph::algo::apsp::{apsp_weighted, measure_stretch_weighted};
use congest_graph::generators::harary;
use congest_graph::WeightedGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("# E8 — (2k-1)-approximate weighted APSP via spanner broadcast");
    println!("paper claim: stretch ≤ 2k-1 with m̃ = O(k·n^(1+1/k)) spanner edges broadcast in Õ(m̃/λ) rounds");

    let lambda = 16usize;
    let n = 96usize;
    let base = harary(lambda, n);
    let mut rng = SmallRng::seed_from_u64(0xE8);
    let weights: Vec<f64> = (0..base.m())
        .map(|_| rng.gen_range(1..100) as f64)
        .collect();
    let g = WeightedGraph::new(base, weights);
    let exact = apsp_weighted(&g);

    let mut t = Table::new(
        format!(
            "k sweep on weighted harary λ={lambda} n={n} (m = {})",
            g.m()
        ),
        &[
            "k",
            "2k-1",
            "measured stretch",
            "spanner edges",
            "k·n^(1+1/k)",
            "rounds",
        ],
    );
    let c1k = corollary1_k(n);
    for k in [1usize, 2, 3, 4, c1k] {
        let out = weighted_apsp_approx(&g, k, lambda, 0xE8).expect("apsp");
        let stretch = measure_stretch_weighted(&exact, &out.estimate)
            .expect("spanner distances must dominate");
        assert!(
            stretch <= (2 * k - 1) as f64 + 1e-9,
            "stretch bound violated at k = {k}"
        );
        let law = k as f64 * (n as f64).powf(1.0 + 1.0 / k as f64);
        t.row(vec![
            format!("{k}{}", if k == c1k { " (Cor.1)" } else { "" }),
            format!("{}", 2 * k - 1),
            f(stretch),
            format!("{}", out.spanner_edges),
            f(law),
            format!("{}", out.total_rounds),
        ]);
    }
    t.print();
    println!(
        "\nshape check: measured stretch ≤ 2k-1 always; spanner size and rounds fall as k grows."
    );
}
