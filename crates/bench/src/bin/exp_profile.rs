//! E12 — traffic-profile "figure": messages delivered per round for the
//! partition broadcast vs the textbook baseline on the same instance.
//!
//! Not a numbered theorem, but the paper's intuition made visible: the
//! textbook pipeline pushes everything through one tree (long plateau at
//! ~n messages/round), while the partition broadcast runs λ′ pipelines at
//! once (shorter, ~λ′× taller plateau). Rendered as a sparkline table.

use congest_bench::Table;
use congest_core::bfs::BfsProtocol;
use congest_core::broadcast::{BroadcastInput, DEFAULT_PARTITION_C};
use congest_core::convergecast::TreeView;
use congest_core::partition::{EdgePartition, PartitionParams};
use congest_core::pipeline::{PipeMsg, TreePipeline};
use congest_graph::generators::harary;
use congest_graph::Graph;
use congest_sim::{run_protocol, EngineConfig};

fn main() {
    println!("# E12 — traffic profile of the routing phase (messages/round)");
    let lambda = 32usize;
    let n = 96usize;
    let g = harary(lambda, n);
    let k = 4 * n;
    let input = BroadcastInput::random_spread(&g, k, 0xE12);

    // Textbook routing phase with trace.
    let bfs = run_protocol(
        &g,
        |v, _| BfsProtocol::new(0, v),
        EngineConfig::with_seed(1),
    )
    .unwrap();
    let views: Vec<TreeView> = bfs.outputs.iter().map(TreeView::from_bfs).collect();
    let mut own: Vec<Vec<PipeMsg>> = vec![Vec::new(); n];
    for (j, &(v, payload)) in input.messages.iter().enumerate() {
        own[v as usize].push(PipeMsg {
            id: j as u32,
            payload,
        });
    }
    let textbook = run_protocol(
        &g,
        |v, _| {
            TreePipeline::new(
                views[v as usize].clone(),
                k as u64,
                own[v as usize].clone(),
                false,
            )
        },
        EngineConfig::with_seed(2).trace(),
    )
    .unwrap();

    // Partition routing phase with trace (reusing the broadcast internals
    // via the public pieces: partition + subgraph BFS + parallel pipes).
    let params = PartitionParams::from_lambda(n, lambda, DEFAULT_PARTITION_C);
    let part = EdgePartition::compute(&g, params, 7);
    let lp = part.num_subgraphs;
    let sub = run_protocol(
        &g,
        |v, gr: &Graph| congest_core::bfs::SubgraphBfs::new(0, v, part.port_colors(gr, v), lp),
        EngineConfig::with_seed(3),
    )
    .unwrap();
    let cap = (k as u64).div_ceil(lp as u64);
    let color_of = |id: u32| ((id as u64 / cap).min(lp as u64 - 1)) as usize;
    let mut k_per = vec![0u64; lp];
    for j in 0..k {
        k_per[color_of(j as u32)] += 1;
    }
    let partition = run_protocol(
        &g,
        |v, _| {
            let vi = v as usize;
            let cores = (0..lp)
                .map(|c| {
                    let mine: Vec<PipeMsg> = own[vi]
                        .iter()
                        .filter(|m| color_of(m.id) == c)
                        .copied()
                        .collect();
                    congest_core::pipeline::PipeCore::new(
                        TreeView::from_bfs(&sub.outputs[vi][c]),
                        k_per[c],
                        mine,
                        false,
                    )
                })
                .collect();
            congest_core::broadcast::ParallelPipeline::new(cores)
        },
        EngineConfig::with_seed(4).trace(),
    )
    .unwrap();

    let tb_trace = textbook.trace.unwrap();
    let pt_trace = partition.trace.unwrap();
    println!(
        "\nn = {n}, λ = {lambda}, λ' = {lp}, k = {k}: textbook routing = {} rounds, partition routing = {} rounds\n",
        tb_trace.len(),
        pt_trace.len()
    );

    let bucket = 16usize;
    let mut t = Table::new(
        format!("messages per round, bucketed ×{bucket}"),
        &[
            "round bucket",
            "textbook msg/round",
            "partition msg/round",
            "profile",
        ],
    );
    let buckets = tb_trace.len().max(pt_trace.len()).div_ceil(bucket);
    let avg = |tr: &[u64], b: usize| -> f64 {
        let lo = b * bucket;
        if lo >= tr.len() {
            return 0.0;
        }
        let hi = ((b + 1) * bucket).min(tr.len());
        tr[lo..hi].iter().sum::<u64>() as f64 / (hi - lo) as f64
    };
    let max_rate = (0..buckets)
        .map(|b| avg(&pt_trace, b).max(avg(&tb_trace, b)))
        .fold(1.0, f64::max);
    for b in 0..buckets {
        let tbv = avg(&tb_trace, b);
        let ptv = avg(&pt_trace, b);
        let bar = |v: f64| "█".repeat(((v / max_rate) * 24.0).round() as usize);
        t.row(vec![
            format!("{}..{}", b * bucket, (b + 1) * bucket),
            format!("{tbv:.0}"),
            format!("{ptv:.0}"),
            format!("T {:<24} P {}", bar(tbv), bar(ptv)),
        ]);
    }
    t.print();
    println!("\nshape check: the partition profile is ~λ'× taller and ~λ'× shorter — same message volume, more parallel wires.");
}
