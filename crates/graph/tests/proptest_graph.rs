//! Property-based tests for the graph substrate: the CSR structure, flows
//! and cuts, diameters, and components must agree with independent
//! reference computations on arbitrary graphs.

use congest_graph::algo::components::{connected_components, is_connected, UnionFind};
use congest_graph::algo::connectivity::{edge_connectivity, min_edge_cut};
use congest_graph::algo::diameter::{diameter_exact, two_sweep_lower_bound};
use congest_graph::algo::stoer_wagner::stoer_wagner_min_cut;
use congest_graph::{Graph, GraphBuilder, WeightedGraph};
use proptest::prelude::*;

/// Arbitrary simple graph from a random edge mask.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n, any::<u64>(), 10u32..80).prop_map(|(n, seed, density)| {
        use congest_sim_free_mix::mix64;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                let h = mix64(seed ^ mix64(((u as u64) << 32) | v as u64));
                if (h % 100) < density as u64 {
                    b.push_edge(u, v);
                }
            }
        }
        b.build().unwrap()
    })
}

/// Local SplitMix64 copy so this test crate needs no sim dependency.
mod congest_sim_free_mix {
    pub fn mix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// CSR invariants: degree sums, sorted adjacency, reverse-arc
    /// involution, endpoint consistency.
    #[test]
    fn csr_invariants(g in arb_graph(24)) {
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
        for v in 0..g.n() as u32 {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for (u, e) in g.edges_of(v) {
                let (a, b) = g.endpoints(e);
                prop_assert_eq!((a, b), (v.min(u), v.max(u)));
                prop_assert!(g.has_edge(u, v));
            }
        }
        for arc in 0..g.num_arcs() {
            prop_assert_eq!(g.reverse_arc(g.reverse_arc(arc)), arc);
        }
    }

    /// Union-find agrees with BFS-based components.
    #[test]
    fn union_find_matches_components(g in arb_graph(24)) {
        let (labels, count) = connected_components(&g);
        let mut uf = UnionFind::new(g.n());
        for (_, u, v) in g.edge_list() {
            uf.union(u, v);
        }
        prop_assert_eq!(uf.num_components(), count);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                prop_assert_eq!(
                    uf.same(u, v),
                    labels[u as usize] == labels[v as usize]
                );
            }
        }
    }

    /// Dinic-based edge connectivity equals Stoer–Wagner's min cut on
    /// unit weights (two independent algorithms).
    #[test]
    fn dinic_equals_stoer_wagner(g in arb_graph(14)) {
        prop_assume!(is_connected(&g) && g.n() >= 2);
        let lam = edge_connectivity(&g);
        let (sw, _) = stoer_wagner_min_cut(&WeightedGraph::unit(g.clone())).unwrap();
        prop_assert_eq!(lam as f64, sw);
    }

    /// The cut returned with λ really has λ crossing edges.
    #[test]
    fn min_cut_side_is_consistent(g in arb_graph(14)) {
        prop_assume!(is_connected(&g) && g.n() >= 2);
        let (lam, side) = min_edge_cut(&g);
        let crossing = g
            .edge_list()
            .filter(|&(_, u, v)| side[u as usize] != side[v as usize])
            .count();
        prop_assert_eq!(crossing, lam);
        prop_assert!(side.iter().any(|&x| x));
        prop_assert!(side.iter().any(|&x| !x));
    }

    /// Two-sweep is a genuine lower bound within factor 2.
    #[test]
    fn two_sweep_bounds_diameter(g in arb_graph(20)) {
        prop_assume!(is_connected(&g) && g.n() >= 2);
        let d = diameter_exact(&g).unwrap();
        let lb = two_sweep_lower_bound(&g, 0).unwrap();
        prop_assert!(lb <= d);
        prop_assert!(2 * lb >= d);
    }

    /// λ ≤ δ ≤ 2m/n ordering (paper §2).
    #[test]
    fn parameter_ordering(g in arb_graph(16)) {
        prop_assume!(g.n() >= 2);
        let lam = edge_connectivity(&g);
        prop_assert!(lam <= g.min_degree());
        prop_assert!(g.min_degree() as f64 <= g.avg_degree() + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental repair oracle: a random sequence of mutation batches
    /// applied through `apply_batch` yields a graph structurally equal
    /// (edge ids, arc layout, reverse arcs) to a fresh `GraphBuilder`
    /// build of the same edge set after every batch.
    #[test]
    fn apply_batch_matches_rebuild(
        g in arb_graph(14),
        seed in any::<u64>(),
        batches in 1usize..6,
        batch_size in 1usize..5,
    ) {
        use congest_sim_free_mix::mix64;
        let n = g.n();
        let mut live = g.clone();
        let mut scratch = congest_graph::RepairScratch::new();
        for b in 0..batches as u64 {
            let mut add = Vec::new();
            let mut remove = Vec::new();
            for d in 0..(4 * batch_size) as u64 {
                let h = mix64(seed ^ mix64(b) ^ d);
                let u = (h % n as u64) as u32;
                let v = ((h >> 20) % n as u64) as u32;
                if u == v {
                    continue;
                }
                let (u, v) = (u.min(v), u.max(v));
                let in_add = add.contains(&(u, v));
                let in_remove = remove.contains(&(u, v));
                if in_add || in_remove {
                    continue;
                }
                if live.has_edge(u, v) {
                    if remove.len() < batch_size {
                        remove.push((u, v));
                    }
                } else if add.len() < batch_size {
                    add.push((u, v));
                }
            }
            let rep = live.apply_batch(&add, &remove, &mut scratch).unwrap();
            prop_assert_eq!(rep.edges_added, add.len());
            prop_assert_eq!(rep.edges_removed, remove.len());
            prop_assert_eq!(rep.m, live.m());
            let rebuilt = GraphBuilder::new(n)
                .edges(live.edge_list().map(|(_, u, v)| (u, v)))
                .build()
                .unwrap();
            prop_assert_eq!(&live, &rebuilt, "batch {} diverged from rebuild", b);
        }
    }
}
