//! # congest-graph — graph substrate for the fast-broadcast reproduction
//!
//! This crate provides everything the rest of the workspace needs to *talk
//! about* graphs:
//!
//! * [`Graph`] — an immutable, cache-friendly CSR (compressed sparse row)
//!   representation of a **simple, undirected, unweighted** graph, the object
//!   the paper quantifies over. Every undirected edge has a stable
//!   [`Edge`] id so that edge-indexed data (partition colors, tree
//!   membership, congestion counters) can live in flat `Vec`s.
//! * [`WeightedGraph`] — a [`Graph`] plus a parallel weight vector, used by
//!   the weighted-APSP (§4.2) and sparsifier (§4.3) applications.
//! * [`builder::GraphBuilder`] — validating construction from edge lists.
//! * [`generators`] — seeded graph families with *known-by-construction*
//!   minimum degree δ and edge connectivity λ (Harary/circulant graphs,
//!   clique chains, tori, hypercubes, random regular, G(n,p), and the
//!   GK13-style lower-bound family from Appendix B).
//! * [`algo`] — centralized ground-truth algorithms used to validate every
//!   distributed result: BFS, exact/estimated diameter, DFS, components,
//!   Dinic max-flow, exact edge connectivity, Stoer–Wagner global min cut,
//!   exact APSP (unweighted and weighted), and greedy bounded-length
//!   edge-disjoint path certificates for (k,d)-connectivity (Lemma 9).
//!
//! Nothing in this crate knows about the CONGEST model; it is pure graph
//! machinery. The simulator ([`congest-sim`]) and the algorithms built on it
//! consume these types.
//!
//! [`congest-sim`]: https://example.org/fast-broadcast

pub mod algo;
pub mod builder;
pub mod generators;
mod graph;
pub mod metrics;
mod mutate;
mod shard;
mod weighted;

pub use builder::GraphBuilder;
pub use graph::{Edge, Graph, Node, Port, INVALID_NODE};
pub use mutate::{MutationError, RepairReport, RepairScratch};
pub use shard::ShardPlan;
pub use weighted::WeightedGraph;
