//! Stoer–Wagner global minimum cut on weighted graphs.
//!
//! Ground truth for the sparsifier experiments (§4.3 / Theorem 7): the
//! min cut of the sparsifier must be within (1±ε) of the min cut of the
//! original graph. `O(n³)` with the simple adjacency-matrix phase scan —
//! ample for verification sizes.

use crate::weighted::WeightedGraph;

/// Weight of a global minimum cut and one side of it.
/// Returns `None` for graphs with fewer than 2 nodes.
pub fn stoer_wagner_min_cut(g: &WeightedGraph) -> Option<(f64, Vec<bool>)> {
    let n = g.n();
    if n < 2 {
        return None;
    }
    // Dense weight matrix; merged nodes accumulate weights.
    let mut w = vec![vec![0.0f64; n]; n];
    for (e, u, v) in g.graph().edge_list() {
        let wt = g.weight(e);
        w[u as usize][v as usize] += wt;
        w[v as usize][u as usize] += wt;
    }
    // merged[v] = the set of original nodes contracted into v.
    let mut members: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best: Option<(f64, Vec<bool>)> = None;

    while active.len() > 1 {
        // Minimum cut phase: maximum-adjacency ordering.
        let mut in_a = vec![false; n];
        let mut weights_to_a = vec![0.0f64; n];
        let first = active[0];
        in_a[first] = true;
        for &v in &active {
            if v != first {
                weights_to_a[v] = w[first][v];
            }
        }
        let mut prev = first;
        let mut last = first;
        for _ in 1..active.len() {
            // Most tightly connected inactive node.
            let mut sel = usize::MAX;
            let mut sel_w = f64::NEG_INFINITY;
            for &v in &active {
                if !in_a[v] && weights_to_a[v] > sel_w {
                    sel_w = weights_to_a[v];
                    sel = v;
                }
            }
            in_a[sel] = true;
            prev = last;
            last = sel;
            for &v in &active {
                if !in_a[v] {
                    weights_to_a[v] += w[sel][v];
                }
            }
        }
        // Cut-of-the-phase: `last` alone (with its merged members) vs rest.
        let cut_weight = weights_to_a[last];
        let mut side = vec![false; n];
        for &orig in &members[last] {
            side[orig as usize] = true;
        }
        match &best {
            Some((bw, _)) if *bw <= cut_weight => {}
            _ => best = Some((cut_weight, side)),
        }
        // Merge `last` into `prev`.
        let last_members = std::mem::take(&mut members[last]);
        members[prev].extend(last_members);
        for &v in &active {
            if v != prev && v != last {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        active.retain(|&v| v != last);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{clique_chain, complete, cycle};
    use crate::weighted::WeightedGraph;

    fn brute_force_min_cut(g: &WeightedGraph) -> f64 {
        let n = g.n();
        assert!(n <= 20);
        let mut best = f64::INFINITY;
        for mask in 1..(1u32 << n) - 1 {
            let side: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
            best = best.min(g.cut_weight(&side));
        }
        best
    }

    #[test]
    fn unit_cycle() {
        let g = WeightedGraph::unit(cycle(6));
        let (w, side) = stoer_wagner_min_cut(&g).unwrap();
        assert_eq!(w, 2.0);
        assert_eq!(g.cut_weight(&side), 2.0);
    }

    #[test]
    fn unit_complete() {
        let g = WeightedGraph::unit(complete(6));
        let (w, _) = stoer_wagner_min_cut(&g).unwrap();
        assert_eq!(w, 5.0);
    }

    #[test]
    fn weighted_bottleneck() {
        // Two triangles joined by a light edge.
        let base = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .build()
            .unwrap();
        let mut weights = vec![10.0; base.m()];
        let bridge = base
            .edge_list()
            .find(|&(_, u, v)| (u, v) == (2, 3))
            .unwrap()
            .0;
        weights[bridge as usize] = 0.5;
        let g = WeightedGraph::new(base, weights);
        let (w, side) = stoer_wagner_min_cut(&g).unwrap();
        assert_eq!(w, 0.5);
        assert_eq!(g.cut_weight(&side), 0.5);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = 8;
            let mut b = GraphBuilder::new(n);
            let mut any = false;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        b.push_edge(u, v);
                        any = true;
                    }
                }
            }
            if !any {
                continue;
            }
            let base = b.build().unwrap();
            let weights: Vec<f64> = (0..base.m()).map(|_| rng.gen_range(1..10) as f64).collect();
            let g = WeightedGraph::new(base, weights);
            let (w, side) = stoer_wagner_min_cut(&g).unwrap();
            let bf = brute_force_min_cut(&g);
            assert!((w - bf).abs() < 1e-9, "SW {w} != brute {bf}");
            assert!((g.cut_weight(&side) - w).abs() < 1e-9);
        }
    }

    #[test]
    fn unweighted_matches_dinic_lambda() {
        let base = clique_chain(3, 5, 2);
        let lam = crate::algo::connectivity::edge_connectivity(&base);
        let g = WeightedGraph::unit(base);
        let (w, _) = stoer_wagner_min_cut(&g).unwrap();
        assert_eq!(w as usize, lam);
    }

    #[test]
    fn tiny_graphs() {
        let single = WeightedGraph::unit(GraphBuilder::new(1).build().unwrap());
        assert!(stoer_wagner_min_cut(&single).is_none());
        let pair = WeightedGraph::unit(GraphBuilder::new(2).edge(0, 1).build().unwrap());
        let (w, _) = stoer_wagner_min_cut(&pair).unwrap();
        assert_eq!(w, 1.0);
    }
}
