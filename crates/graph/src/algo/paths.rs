//! Greedy bounded-length edge-disjoint path certificates.
//!
//! Lemma 9 of the paper states every simple graph with edge connectivity λ
//! and min degree δ is `(λ/5, 16n/δ)`-connected: any two nodes are joined
//! by ≥ λ/5 edge-disjoint paths of length ≤ 16n/δ each.
//!
//! Deciding length-bounded edge-disjoint path packing exactly is NP-hard
//! (Itai–Perl–Shiloach), so — per the substitution rule (DESIGN.md §2) —
//! we compute a **greedy lower-bound certificate**: repeatedly find a
//! shortest path between the pair, record it, delete its edges. The greedy
//! count with a length cap is a valid witness that *at least that many*
//! disjoint bounded-length paths exist, which is exactly the direction
//! Lemma 9 claims. Experiment E10 reports certificates across families.

use crate::graph::{Graph, Node, INVALID_NODE};
use std::collections::VecDeque;

/// Result of a greedy disjoint-path extraction between one node pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointPathsCertificate {
    pub source: Node,
    pub target: Node,
    /// Lengths of the extracted edge-disjoint paths, in extraction order
    /// (non-decreasing, since we always extract a currently-shortest path).
    pub path_lengths: Vec<u32>,
}

impl DisjointPathsCertificate {
    /// Number of disjoint paths of length ≤ `d`.
    pub fn count_within(&self, d: u32) -> usize {
        self.path_lengths.iter().filter(|&&l| l <= d).count()
    }

    /// The maximum path length among the first `k` extracted paths, if at
    /// least `k` paths were found.
    pub fn max_length_of_first(&self, k: usize) -> Option<u32> {
        if self.path_lengths.len() < k || k == 0 {
            None
        } else {
            self.path_lengths[..k].iter().copied().max()
        }
    }
}

/// Greedily extract edge-disjoint shortest `s`–`t` paths until none remain
/// or `max_paths` have been extracted. Paths are found by BFS on the
/// residual edge set, so each extracted path is shortest *at its time of
/// extraction* — the sequence of lengths is non-decreasing.
pub fn greedy_disjoint_paths(
    g: &Graph,
    s: Node,
    t: Node,
    max_paths: usize,
) -> DisjointPathsCertificate {
    assert_ne!(s, t);
    let mut removed = vec![false; g.m()];
    let mut path_lengths = Vec::new();
    let mut parent_edge = vec![u32::MAX; g.n()];
    let mut parent = vec![INVALID_NODE; g.n()];
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = VecDeque::new();

    while path_lengths.len() < max_paths {
        // BFS on the residual graph.
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        queue.clear();
        dist[s as usize] = 0;
        queue.push_back(s);
        let mut reached = false;
        'bfs: while let Some(v) = queue.pop_front() {
            for (u, e) in g.edges_of(v) {
                if removed[e as usize] || dist[u as usize] != u32::MAX {
                    continue;
                }
                dist[u as usize] = dist[v as usize] + 1;
                parent[u as usize] = v;
                parent_edge[u as usize] = e;
                if u == t {
                    reached = true;
                    break 'bfs;
                }
                queue.push_back(u);
            }
        }
        if !reached {
            break;
        }
        // Walk back, deleting path edges.
        let mut len = 0u32;
        let mut cur = t;
        while cur != s {
            removed[parent_edge[cur as usize] as usize] = true;
            cur = parent[cur as usize];
            len += 1;
        }
        path_lengths.push(len);
    }
    DisjointPathsCertificate {
        source: s,
        target: t,
        path_lengths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, harary, thick_path};

    #[test]
    fn cycle_has_two_disjoint_paths() {
        let g = cycle(8);
        let cert = greedy_disjoint_paths(&g, 0, 4, 10);
        assert_eq!(cert.path_lengths, vec![4, 4]);
        assert_eq!(cert.count_within(4), 2);
        assert_eq!(cert.count_within(3), 0);
    }

    #[test]
    fn complete_graph_has_n_minus_1_short_paths() {
        let g = complete(7);
        let cert = greedy_disjoint_paths(&g, 0, 6, 10);
        // One direct edge + 5 two-hop paths = 6 = n - 1 = λ.
        assert_eq!(cert.path_lengths.len(), 6);
        assert!(cert.path_lengths.iter().all(|&l| l <= 2));
    }

    #[test]
    fn lengths_non_decreasing() {
        let g = harary(6, 24);
        let cert = greedy_disjoint_paths(&g, 0, 12, 12);
        assert!(cert.path_lengths.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn count_respects_lambda() {
        // λ edge-disjoint paths exist by Menger; greedy finds at most λ and
        // at least 1.
        let g = harary(4, 20);
        let cert = greedy_disjoint_paths(&g, 0, 10, 100);
        assert!(cert.path_lengths.len() <= 4 + 1); // greedy ≤ λ cross-check below
        assert!(!cert.path_lengths.is_empty());
        // An exact check: total disjoint paths can't exceed min degree of
        // the endpoints.
        assert!(cert.path_lengths.len() <= g.degree(0));
    }

    #[test]
    fn lemma9_shape_on_thick_path() {
        // thick_path(columns, λ): endpoints in the two extreme columns.
        // λ disjoint paths of length ≈ columns each exist (one per lane).
        let lambda = 4;
        let cols = 6;
        let g = thick_path(cols, lambda);
        let s = 0;
        let t = (cols * lambda - 1) as Node;
        let cert = greedy_disjoint_paths(&g, s, t, 100);
        // Lemma 9 promises ≥ λ/5 paths of length ≤ 16n/δ.
        let n = g.n() as u32;
        let delta = g.min_degree() as u32;
        let bound = 16 * n / delta;
        assert!(
            cert.count_within(bound) >= lambda / 5,
            "expected ≥ λ/5 = {} paths within {bound}, got {:?}",
            lambda / 5,
            cert.path_lengths
        );
    }

    #[test]
    fn max_length_of_first() {
        let g = cycle(6);
        let cert = greedy_disjoint_paths(&g, 0, 3, 10);
        assert_eq!(cert.max_length_of_first(1), Some(3));
        assert_eq!(cert.max_length_of_first(2), Some(3));
        assert_eq!(cert.max_length_of_first(3), None);
        assert_eq!(cert.max_length_of_first(0), None);
    }
}
