//! Centralized ground-truth algorithms.
//!
//! Everything the experiments use to *verify* distributed results lives
//! here: BFS/DFS, exact diameters, components, max-flow and exact edge
//! connectivity, Stoer–Wagner global min cut, exact APSP (unweighted and
//! weighted), and greedy bounded-length edge-disjoint path certificates.
//!
//! These are classical algorithms implemented with flat, allocation-light
//! data structures; the all-pairs computations parallelize over sources
//! with rayon (deterministic: each source writes only its own row).

pub mod apsp;
pub mod bfs;
pub mod bridges;
pub mod components;
pub mod connectivity;
pub mod dfs;
pub mod diameter;
pub mod karger;
pub mod maxflow;
pub mod paths;
pub mod stoer_wagner;

pub use apsp::{apsp_unweighted, apsp_weighted};
pub use bfs::{bfs_distances, bfs_tree, BfsTree, UNREACHABLE};
pub use bridges::{bridges, has_bridge};
pub use components::{connected_components, is_connected, UnionFind};
pub use connectivity::edge_connectivity;
pub use dfs::{dfs_order, dfs_walk_first_visit};
pub use diameter::{diameter_exact, eccentricity, two_sweep_lower_bound};
pub use karger::{karger_min_cut, karger_whp_repetitions};
pub use maxflow::Dinic;
pub use paths::greedy_disjoint_paths;
pub use stoer_wagner::stoer_wagner_min_cut;
