//! Breadth-first search: distances, trees, and edge-restricted variants.

use crate::graph::{Graph, Node, INVALID_NODE};
use std::collections::VecDeque;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src`; `UNREACHABLE` where not reachable.
pub fn bfs_distances(g: &Graph, src: Node) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// A rooted BFS tree: parent pointers, the edge to the parent, and depths.
#[derive(Debug, Clone)]
pub struct BfsTree {
    pub root: Node,
    /// `parent[v]` is `INVALID_NODE` for the root and unreachable nodes.
    pub parent: Vec<Node>,
    /// Edge id of `{v, parent[v]}` (undefined where parent is invalid).
    pub parent_edge: Vec<u32>,
    /// BFS depth (`UNREACHABLE` where unreachable).
    pub depth: Vec<u32>,
}

impl BfsTree {
    /// Height of the tree = max finite depth.
    pub fn height(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Whether every node is reachable (tree is spanning).
    pub fn is_spanning(&self) -> bool {
        self.depth.iter().all(|&d| d != UNREACHABLE)
    }

    /// Children lists (computed on demand).
    pub fn children(&self) -> Vec<Vec<Node>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (v, &p) in self.parent.iter().enumerate() {
            if p != INVALID_NODE {
                ch[p as usize].push(v as Node);
            }
        }
        ch
    }

    /// Number of reachable nodes (including the root).
    pub fn reached(&self) -> usize {
        self.depth.iter().filter(|&&d| d != UNREACHABLE).count()
    }
}

/// BFS tree from `src` over the whole graph.
pub fn bfs_tree(g: &Graph, src: Node) -> BfsTree {
    bfs_tree_restricted(g, src, |_| true)
}

/// BFS tree from `src` using only edges for which `allow(edge_id)` holds.
///
/// This is how Theorem 2's subgraphs `G_i` are explored: the partition
/// colors edges, and each `G_i`-BFS runs on its own color class.
pub fn bfs_tree_restricted<F: FnMut(u32) -> bool>(g: &Graph, src: Node, mut allow: F) -> BfsTree {
    let n = g.n();
    let mut parent = vec![INVALID_NODE; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut depth = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    depth[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = depth[v as usize];
        for (u, e) in g.edges_of(v) {
            if depth[u as usize] == UNREACHABLE && allow(e) {
                depth[u as usize] = dv + 1;
                parent[u as usize] = v;
                parent_edge[u as usize] = e;
                queue.push_back(u);
            }
        }
    }
    BfsTree {
        root: src,
        parent,
        parent_edge,
        depth,
    }
}

/// Multi-source BFS: distance to the nearest source.
pub fn multi_source_bfs(g: &Graph, sources: &[Node]) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path, torus2d};

    #[test]
    fn path_distances() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tree_structure_on_cycle() {
        let g = cycle(6);
        let t = bfs_tree(&g, 0);
        assert!(t.is_spanning());
        assert_eq!(t.height(), 3);
        assert_eq!(t.parent[0], INVALID_NODE);
        // Every non-root node's parent edge actually connects it to parent.
        for v in 1..6u32 {
            let p = t.parent[v as usize];
            let e = t.parent_edge[v as usize];
            let (a, b) = g.endpoints(e);
            assert!((a, b) == (v.min(p), v.max(p)));
            assert_eq!(t.depth[v as usize], t.depth[p as usize] + 1);
        }
    }

    #[test]
    fn restricted_bfs_respects_filter() {
        let g = cycle(6);
        // Forbid the edge {0,5}: distances become path-like.
        let forbidden = g.edge_list().find(|&(_, u, v)| (u, v) == (0, 5)).unwrap().0;
        let t = bfs_tree_restricted(&g, 0, |e| e != forbidden);
        assert!(t.is_spanning());
        assert_eq!(t.depth[5], 5);
    }

    #[test]
    fn multi_source() {
        let g = path(7);
        let d = multi_source_bfs(&g, &[0, 6]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn unreachable_marked() {
        let g = crate::builder::GraphBuilder::new(4)
            .edge(0, 1)
            .build()
            .unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        let t = bfs_tree(&g, 0);
        assert!(!t.is_spanning());
        assert_eq!(t.reached(), 2);
    }

    #[test]
    fn torus_center_distances() {
        let g = torus2d(5, 5);
        let d = bfs_distances(&g, 0);
        assert_eq!(*d.iter().max().unwrap(), 4); // ⌊5/2⌋+⌊5/2⌋
    }
}
