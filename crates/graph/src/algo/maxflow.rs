//! Dinic's maximum-flow algorithm on integer capacities.
//!
//! Used as ground truth for exact edge connectivity (λ): the paper's bounds
//! are all parameterized by λ, so experiments verify the generated families
//! deliver the λ they promise.
//!
//! Complexity `O(V²E)` in general, `O(E·√V)` on unit-capacity graphs —
//! plenty for the verification sizes we run (n up to a few thousand).

/// A directed flow network with residual arcs, built incrementally.
#[derive(Debug, Clone)]
pub struct Dinic {
    /// Arc heads; arc `i^1` is the residual twin of arc `i`.
    head: Vec<u32>,
    /// Residual capacities, parallel to `head`.
    cap: Vec<i64>,
    /// Per-node adjacency: indices into `head`.
    adj: Vec<Vec<u32>>,
    /// BFS level and DFS cursor scratch.
    level: Vec<i32>,
    cursor: Vec<usize>,
}

impl Dinic {
    pub fn new(n: usize) -> Self {
        Dinic {
            head: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            cursor: vec![0; n],
        }
    }

    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed arc `u → v` with capacity `c` (and its 0-capacity
    /// residual twin). Returns the arc index.
    pub fn add_arc(&mut self, u: u32, v: u32, c: i64) -> u32 {
        assert!(c >= 0);
        let idx = self.head.len() as u32;
        self.head.push(v);
        self.cap.push(c);
        self.adj[u as usize].push(idx);
        self.head.push(u);
        self.cap.push(0);
        self.adj[v as usize].push(idx + 1);
        idx
    }

    /// Add an undirected edge `{u, v}` of capacity `c` (capacity `c` in each
    /// direction, sharing residual structure).
    pub fn add_undirected(&mut self, u: u32, v: u32, c: i64) {
        assert!(c >= 0);
        let idx = self.head.len() as u32;
        self.head.push(v);
        self.cap.push(c);
        self.adj[u as usize].push(idx);
        self.head.push(u);
        self.cap.push(c);
        self.adj[v as usize].push(idx + 1);
    }

    fn bfs(&mut self, s: u32, t: u32) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &a in &self.adj[v as usize] {
                let u = self.head[a as usize];
                if self.cap[a as usize] > 0 && self.level[u as usize] < 0 {
                    self.level[u as usize] = self.level[v as usize] + 1;
                    queue.push_back(u);
                }
            }
        }
        self.level[t as usize] >= 0
    }

    fn dfs(&mut self, v: u32, t: u32, pushed: i64) -> i64 {
        if v == t || pushed == 0 {
            return pushed;
        }
        while self.cursor[v as usize] < self.adj[v as usize].len() {
            let a = self.adj[v as usize][self.cursor[v as usize]];
            let u = self.head[a as usize];
            if self.cap[a as usize] > 0 && self.level[u as usize] == self.level[v as usize] + 1 {
                let d = self.dfs(u, t, pushed.min(self.cap[a as usize]));
                if d > 0 {
                    self.cap[a as usize] -= d;
                    self.cap[(a ^ 1) as usize] += d;
                    return d;
                }
            }
            self.cursor[v as usize] += 1;
        }
        0
    }

    /// Maximum `s`–`t` flow. Destroys capacities (run on a clone to reuse).
    pub fn max_flow(&mut self, s: u32, t: u32) -> i64 {
        assert_ne!(s, t);
        let mut flow = 0;
        while self.bfs(s, t) {
            self.cursor.iter_mut().for_each(|c| *c = 0);
            loop {
                let pushed = self.dfs(s, t, i64::MAX);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After [`Dinic::max_flow`], the source side of a minimum cut: nodes
    /// still reachable from `s` in the residual network.
    pub fn min_cut_side(&self, s: u32) -> Vec<bool> {
        let mut side = vec![false; self.n()];
        let mut queue = std::collections::VecDeque::new();
        side[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &a in &self.adj[v as usize] {
                let u = self.head[a as usize];
                if self.cap[a as usize] > 0 && !side[u as usize] {
                    side[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_network() {
        // s=0, t=5; CLRS-style example, max flow 23.
        let mut d = Dinic::new(6);
        d.add_arc(0, 1, 16);
        d.add_arc(0, 2, 13);
        d.add_arc(1, 2, 10);
        d.add_arc(2, 1, 4);
        d.add_arc(1, 3, 12);
        d.add_arc(3, 2, 9);
        d.add_arc(2, 4, 14);
        d.add_arc(4, 3, 7);
        d.add_arc(3, 5, 20);
        d.add_arc(4, 5, 4);
        assert_eq!(d.max_flow(0, 5), 23);
    }

    #[test]
    fn undirected_unit_edges_give_edge_disjoint_paths() {
        // 4-cycle: two edge-disjoint paths between opposite corners.
        let mut d = Dinic::new(4);
        d.add_undirected(0, 1, 1);
        d.add_undirected(1, 2, 1);
        d.add_undirected(2, 3, 1);
        d.add_undirected(3, 0, 1);
        assert_eq!(d.max_flow(0, 2), 2);
    }

    #[test]
    fn min_cut_side_matches_flow() {
        let mut d = Dinic::new(4);
        d.add_arc(0, 1, 3);
        d.add_arc(1, 2, 1); // bottleneck
        d.add_arc(2, 3, 3);
        assert_eq!(d.max_flow(0, 3), 1);
        let side = d.min_cut_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn zero_flow_when_disconnected() {
        let mut d = Dinic::new(3);
        d.add_arc(0, 1, 5);
        assert_eq!(d.max_flow(0, 2), 0);
    }

    #[test]
    fn brute_force_cross_check_small_random() {
        // Compare Dinic against brute-force min cut enumeration on small
        // random undirected unit graphs (max-flow-min-cut).
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..30 {
            let n = 6;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.6) {
                        edges.push((u, v));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let s = 0u32;
            let t = (n - 1) as u32;
            let mut d = Dinic::new(n);
            for &(u, v) in &edges {
                d.add_undirected(u, v, 1);
            }
            let flow = d.max_flow(s, t);
            // Brute force: min over subsets containing s but not t of the
            // number of crossing edges.
            let mut best = i64::MAX;
            for mask in 0..(1u32 << n) {
                if mask & 1 == 0 || mask >> (n - 1) & 1 == 1 {
                    continue;
                }
                let cut = edges
                    .iter()
                    .filter(|&&(u, v)| (mask >> u & 1) != (mask >> v & 1))
                    .count() as i64;
                best = best.min(cut);
            }
            assert_eq!(flow, best, "trial {trial}: flow != brute-force cut");
        }
    }
}
