//! Bridge detection (Tarjan's low-link algorithm).
//!
//! A graph has edge connectivity λ = 1 exactly when it has a bridge — the
//! paper's motivating worst case ("if the minimum cut size is one, simply
//! transmitting messages from one side of the cut to the other would
//! require Ω(k) rounds"). Bridge detection gives experiments and the CLI
//! a linear-time diagnosis of *why* a network is stuck in the slow
//! regime, without paying for max-flow.

use crate::graph::{Edge, Graph, Node};

/// All bridge edges of `g` (edges whose removal disconnects their
/// component), in ascending edge-id order. Iterative Tarjan low-link.
pub fn bridges(g: &Graph) -> Vec<Edge> {
    let n = g.n();
    let mut disc = vec![u32::MAX; n]; // discovery times
    let mut low = vec![u32::MAX; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut timer = 0u32;
    let mut out = Vec::new();
    // Explicit DFS stack: (node, port cursor).
    let mut stack: Vec<(Node, usize)> = Vec::new();
    for start in 0..n as Node {
        if disc[start as usize] != u32::MAX {
            continue;
        }
        disc[start as usize] = timer;
        low[start as usize] = timer;
        timer += 1;
        stack.push((start, 0));
        while let Some(&mut (v, ref mut port)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            let eids = g.incident_edges(v);
            if *port < nbrs.len() {
                let u = nbrs[*port];
                let e = eids[*port];
                *port += 1;
                if disc[u as usize] == u32::MAX {
                    // Tree edge: descend.
                    disc[u as usize] = timer;
                    low[u as usize] = timer;
                    timer += 1;
                    parent_edge[u as usize] = e;
                    stack.push((u, 0));
                } else if e != parent_edge[v as usize] {
                    // Back edge (or parallel exploration of the same
                    // level): update low-link.
                    low[v as usize] = low[v as usize].min(disc[u as usize]);
                }
            } else {
                // Retreat: propagate low-link to the parent and test the
                // bridge condition.
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] > disc[p as usize] {
                        out.push(parent_edge[v as usize]);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Whether `g` contains any bridge (λ ≤ 1 on some component).
pub fn has_bridge(g: &Graph) -> bool {
    !bridges(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barbell, complete, cycle, harary, path};

    #[test]
    fn path_is_all_bridges() {
        let g = path(6);
        assert_eq!(bridges(&g).len(), 5);
    }

    #[test]
    fn cycle_has_none() {
        assert!(bridges(&cycle(7)).is_empty());
        assert!(!has_bridge(&cycle(7)));
    }

    #[test]
    fn barbell_bridge_is_the_path() {
        let g = barbell(5, 3);
        let b = bridges(&g);
        assert_eq!(b.len(), 3, "every path edge is a bridge");
        // Each reported bridge, removed, must disconnect the graph.
        for &e in &b {
            let (sub, _) = g.edge_subgraph(|x| x != e);
            assert!(!crate::algo::components::is_connected(&sub));
        }
    }

    #[test]
    fn two_connected_families_have_none() {
        for g in [complete(8), harary(4, 16)] {
            assert!(bridges(&g).is_empty());
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..20 {
            let n = 10;
            let mut b = crate::builder::GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.25) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let fast = bridges(&g);
            // Brute force: an edge is a bridge iff removing it increases
            // the component count.
            let (_, base_components) = crate::algo::components::connected_components(&g);
            let brute: Vec<u32> = g
                .edge_list()
                .filter(|&(e, _, _)| {
                    let (sub, _) = g.edge_subgraph(|x| x != e);
                    crate::algo::components::connected_components(&sub).1 > base_components
                })
                .map(|(e, _, _)| e)
                .collect();
            assert_eq!(fast, brute);
        }
    }
}
