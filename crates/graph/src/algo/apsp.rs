//! Exact all-pairs shortest paths — ground truth for §4's approximation
//! guarantees ((3,2) unweighted, (2k−1) weighted).
//!
//! Both variants parallelize over sources; each source writes only its own
//! row, so results are deterministic under any thread count.

use crate::algo::bfs::bfs_distances;
use crate::graph::{Graph, Node};
use crate::weighted::WeightedGraph;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Dense distance matrix for unweighted APSP; `dist[u][v] = u32::MAX`
/// when unreachable. `O(n·m)` via n parallel BFS.
pub fn apsp_unweighted(g: &Graph) -> Vec<Vec<u32>> {
    (0..g.n() as Node)
        .into_par_iter()
        .map(|s| bfs_distances(g, s))
        .collect()
}

/// Dijkstra distances from `src` on a weighted graph.
pub fn dijkstra(g: &WeightedGraph, src: Node) -> Vec<f64> {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    // BinaryHeap over ordered bits of f64 (all weights positive & finite).
    let mut heap: BinaryHeap<Reverse<(u64, Node)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f64::from_bits(dbits);
        if d > dist[v as usize] {
            continue;
        }
        for (u, _e, w) in g.edges_of(v) {
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd.to_bits(), u)));
            }
        }
    }
    dist
}

/// Dense distance matrix for weighted APSP; `f64::INFINITY` when
/// unreachable. `O(n·m log n)` via n parallel Dijkstras.
pub fn apsp_weighted(g: &WeightedGraph) -> Vec<Vec<f64>> {
    (0..g.n() as Node)
        .into_par_iter()
        .map(|s| dijkstra(g, s))
        .collect()
}

/// Measured `(α, β)` approximation quality of an estimate matrix against
/// the exact unweighted APSP: verifies `d ≤ d̃` everywhere and returns the
/// smallest multiplicative stretch observed assuming additive slack `beta`
/// (i.e. `max over pairs of (d̃ − β)/d` for `d ≥ 1`).
pub fn measure_stretch_unweighted(
    exact: &[Vec<u32>],
    estimate: &[Vec<u32>],
    beta: u32,
) -> Result<f64, String> {
    let n = exact.len();
    let mut worst: f64 = 1.0;
    for u in 0..n {
        for v in 0..n {
            let d = exact[u][v];
            let e = estimate[u][v];
            if d == u32::MAX || e == u32::MAX {
                if d != e {
                    return Err(format!("reachability mismatch at ({u},{v})"));
                }
                continue;
            }
            if e < d {
                return Err(format!("estimate {e} below true distance {d} at ({u},{v})"));
            }
            if d > 0 {
                worst = worst.max((e.saturating_sub(beta)) as f64 / d as f64);
            } else if e > beta {
                return Err(format!("self-distance estimate {e} > β at ({u},{v})"));
            }
        }
    }
    Ok(worst)
}

/// Same for weighted instances with purely multiplicative stretch.
pub fn measure_stretch_weighted(exact: &[Vec<f64>], estimate: &[Vec<f64>]) -> Result<f64, String> {
    let n = exact.len();
    let mut worst: f64 = 1.0;
    for u in 0..n {
        for v in 0..n {
            let d = exact[u][v];
            let e = estimate[u][v];
            if !d.is_finite() || !e.is_finite() {
                if d.is_finite() != e.is_finite() {
                    return Err(format!("reachability mismatch at ({u},{v})"));
                }
                continue;
            }
            if e < d - 1e-9 {
                return Err(format!("estimate {e} below true distance {d} at ({u},{v})"));
            }
            if d > 0.0 {
                worst = worst.max(e / d);
            }
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{cycle, path, torus2d};

    #[test]
    fn unweighted_matrix_is_symmetric_metric() {
        let g = torus2d(4, 4);
        let d = apsp_unweighted(&g);
        let n = g.n();
        for u in 0..n {
            assert_eq!(d[u][u], 0);
            for v in 0..n {
                assert_eq!(d[u][v], d[v][u]);
                for w in 0..n {
                    assert!(d[u][w] <= d[u][v] + d[v][w], "triangle inequality");
                }
            }
        }
    }

    #[test]
    fn dijkstra_on_weighted_cycle() {
        let base = cycle(4);
        // Weights: make one direction expensive.
        let mut weights = vec![1.0; base.m()];
        let heavy = base
            .edge_list()
            .find(|&(_, u, v)| (u, v) == (0, 3))
            .unwrap()
            .0;
        weights[heavy as usize] = 10.0;
        let g = WeightedGraph::new(base, weights);
        let d = dijkstra(&g, 0);
        assert_eq!(d[3], 3.0); // around the cheap side
    }

    #[test]
    fn weighted_apsp_matches_unweighted_on_unit() {
        let g = path(6);
        let exact_u = apsp_unweighted(&g);
        let exact_w = apsp_weighted(&WeightedGraph::unit(g));
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(exact_u[u][v] as f64, exact_w[u][v]);
            }
        }
    }

    #[test]
    fn stretch_measurement_detects_underestimates() {
        let g = path(4);
        let exact = apsp_unweighted(&g);
        let mut bad = exact.clone();
        bad[0][3] = 1; // underestimate
        assert!(measure_stretch_unweighted(&exact, &bad, 0).is_err());
    }

    #[test]
    fn stretch_measurement_computes_alpha() {
        let g = path(4);
        let exact = apsp_unweighted(&g);
        let mut est = exact.clone();
        // Inflate everything by 3x + 2.
        for row in est.iter_mut() {
            for x in row.iter_mut() {
                if *x != u32::MAX {
                    *x = *x * 3 + 2;
                }
            }
        }
        let alpha = measure_stretch_unweighted(&exact, &est, 2).unwrap();
        assert!((alpha - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_pairs_must_agree() {
        let g = GraphBuilder::new(3).edge(0, 1).build().unwrap();
        let exact = apsp_unweighted(&g);
        assert_eq!(exact[0][2], u32::MAX);
        let ok = measure_stretch_unweighted(&exact, &exact, 0).unwrap();
        assert_eq!(ok, 1.0);
    }
}
