//! Iterative depth-first search: discovery order and **walk timestamps**.
//!
//! The PRT12 APSP simulation (paper Lemma 6) needs DFS *walk* times
//! `π(u)` on the cluster graph — the step of the depth-first **walk**
//! (every tree-edge traversal, descending or backtracking, advances the
//! clock) at which `u` is first reached. Because the walk moves one edge
//! per step, `|π(u) − π(w)| ≥ d(u, w)`, which is exactly what makes the
//! staggered BFS waves (start time `2·π(u)`) collision-free: a collision
//! at `v` would need `2|π(u) − π(w)| = |d(w,v) − d(u,v)| ≤ d(u,w)`,
//! forcing `u = w`. Discovery *indices* do **not** have this property —
//! see `dfs_walk_first_visit`'s tests for a regression pinning this down.

use crate::graph::{Graph, Node};

/// DFS discovery order from `src`: returns `(order, time)` where
/// `order[i]` is the i-th discovered node and `time[v]` its discovery
/// index (`u32::MAX` if unreachable from `src`).
pub fn dfs_order(g: &Graph, src: Node) -> (Vec<Node>, Vec<u32>) {
    let n = g.n();
    let mut time = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    // Explicit stack of (node, next-port) for an allocation-free walk.
    let mut stack: Vec<(Node, usize)> = Vec::new();
    time[src as usize] = 0;
    order.push(src);
    stack.push((src, 0));
    while let Some(&mut (v, ref mut port)) = stack.last_mut() {
        let nbrs = g.neighbors(v);
        if *port >= nbrs.len() {
            stack.pop();
            continue;
        }
        let u = nbrs[*port];
        *port += 1;
        if time[u as usize] == u32::MAX {
            time[u as usize] = order.len() as u32;
            order.push(u);
            stack.push((u, 0));
        }
    }
    (order, time)
}

/// First-visit **walk** timestamps of a DFS from `src`: `time[v]` is the
/// number of edge traversals (descents *and* backtracks) performed before
/// the walk first stands on `v`; `u32::MAX` where unreachable. The root
/// gets 0; the walk traverses each DFS-tree edge twice, so all times are
/// `< 2(n−1)`.
///
/// Key metric property (relied on by PRT12): `|time[u] − time[w]| ≥
/// d(u, w)` for reachable `u`, `w`.
pub fn dfs_walk_first_visit(g: &Graph, src: Node) -> Vec<u32> {
    let n = g.n();
    let mut time = vec![u32::MAX; n];
    let mut clock = 0u32;
    let mut stack: Vec<(Node, usize)> = Vec::new();
    time[src as usize] = 0;
    stack.push((src, 0));
    while let Some(&mut (v, ref mut port)) = stack.last_mut() {
        let nbrs = g.neighbors(v);
        let mut advanced = false;
        while *port < nbrs.len() {
            let u = nbrs[*port];
            *port += 1;
            if time[u as usize] == u32::MAX {
                clock += 1; // walk down the tree edge
                time[u as usize] = clock;
                stack.push((u, 0));
                advanced = true;
                break;
            }
        }
        if !advanced {
            stack.pop();
            if !stack.is_empty() {
                clock += 1; // backtrack over the tree edge
            }
        }
    }
    time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::apsp::apsp_unweighted;
    use crate::generators::{complete, gnp_connected, path, torus2d};

    #[test]
    fn path_dfs_is_sequential() {
        let g = path(5);
        let (order, time) = dfs_order(&g, 0);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(time, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn timestamps_are_a_permutation() {
        let g = complete(7);
        let (order, time) = dfs_order(&g, 3);
        assert_eq!(order.len(), 7);
        let mut seen = [false; 7];
        for &v in &order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        for (v, &t) in time.iter().enumerate() {
            assert_eq!(order[t as usize] as usize, v);
        }
    }

    #[test]
    fn unreachable_gets_max() {
        let g = crate::builder::GraphBuilder::new(3)
            .edge(0, 1)
            .build()
            .unwrap();
        let (order, time) = dfs_order(&g, 0);
        assert_eq!(order.len(), 2);
        assert_eq!(time[2], u32::MAX);
        assert_eq!(dfs_walk_first_visit(&g, 0)[2], u32::MAX);
    }

    #[test]
    fn walk_times_on_path_match_distance() {
        let g = path(6);
        let t = dfs_walk_first_visit(&g, 0);
        assert_eq!(t, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn walk_times_bounded_by_twice_tree_edges() {
        for g in [complete(9), torus2d(4, 4), gnp_connected(30, 0.2, 3)] {
            let t = dfs_walk_first_visit(&g, 0);
            let max = t.iter().copied().max().unwrap();
            assert!(max < 2 * (g.n() as u32 - 1), "walk time {max} too large");
        }
    }

    #[test]
    fn walk_metric_property_holds() {
        // |π(u) − π(w)| ≥ d(u, w): the property PRT12's collision-freeness
        // rests on. Discovery *indices* violate this (regression guard).
        for seed in 0..5u64 {
            let g = gnp_connected(24, 0.2, seed);
            let t = dfs_walk_first_visit(&g, 0);
            let dist = apsp_unweighted(&g);
            for u in 0..g.n() {
                for w in 0..g.n() {
                    let gap = t[u].abs_diff(t[w]);
                    assert!(
                        gap >= dist[u][w] || u == w,
                        "seed {seed}: |π({u})−π({w})| = {gap} < d = {}",
                        dist[u][w]
                    );
                }
            }
        }
    }
}
