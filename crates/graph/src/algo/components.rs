//! Connected components and a small union-find.

use crate::graph::{Graph, Node};

/// Path-compressing, union-by-size disjoint-set forest.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Union the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    pub fn num_components(&self) -> usize {
        self.components
    }

    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Component label per node (labels are `0..num_components`, assigned in
/// order of first appearance) plus the component count.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for s in 0..n as Node {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = count;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Whether the graph is connected (true for the empty graph on 0 nodes).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).1 <= 1
}

/// Whether the edge set selected by `allow` spans all nodes in one
/// component — the per-subgraph check of Theorem 2.
pub fn is_spanning_connected<F: FnMut(u32) -> bool>(g: &Graph, allow: F) -> bool {
    if g.n() == 0 {
        return true;
    }
    let t = crate::algo::bfs::bfs_tree_restricted(g, 0, allow);
    t.is_spanning()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{complete, cycle};

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.component_size(2), 3);
    }

    #[test]
    fn components_of_two_triangles() {
        let g = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
            .build()
            .unwrap();
        let (label, cnt) = connected_components(&g);
        assert_eq!(cnt, 2);
        assert_eq!(label[0], label[1]);
        assert_eq!(label[3], label[5]);
        assert_ne!(label[0], label[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_families() {
        assert!(is_connected(&complete(5)));
        assert!(is_connected(&cycle(9)));
    }

    #[test]
    fn spanning_check_with_filter() {
        let g = cycle(5);
        assert!(is_spanning_connected(&g, |_| true));
        // Remove two edges: cycle minus 2 edges is disconnected ⇒ not spanning.
        assert!(!is_spanning_connected(&g, |e| e != 0 && e != 2));
        // Remove one edge: still a spanning path.
        assert!(is_spanning_connected(&g, |e| e != 0));
    }
}
