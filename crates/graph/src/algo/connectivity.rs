//! Exact edge connectivity λ.
//!
//! λ = min over all nonempty proper subsets S of |E(S, V∖S)|. By
//! Menger/max-flow-min-cut, λ = min over t ≠ s of maxflow(s, t) for any
//! fixed s (every global min cut separates s from *some* node). We run the
//! n−1 unit-capacity Dinic computations in parallel over targets.

use crate::algo::components::is_connected;
use crate::algo::maxflow::Dinic;
use crate::graph::{Graph, Node};
use rayon::prelude::*;

/// Exact edge connectivity of `g`. Returns 0 for disconnected or
/// single-node graphs.
pub fn edge_connectivity(g: &Graph) -> usize {
    let n = g.n();
    if n <= 1 || !is_connected(g) {
        return 0;
    }
    // Template network reused (cloned) per target.
    let mut template = Dinic::new(n);
    for (_, u, v) in g.edge_list() {
        template.add_undirected(u, v, 1);
    }
    let s: Node = 0;
    // λ ≤ δ always; short-circuit each flow at the current best is possible
    // but Dinic has no early-exit hook here — δ caps the work anyway because
    // each flow is at most δ augmentations deep in value.
    (1..n as Node)
        .into_par_iter()
        .map(|t| {
            let mut net = template.clone();
            net.max_flow(s, t) as usize
        })
        .min()
        .unwrap_or(0)
}

/// Exact edge connectivity together with one side of a minimum cut.
pub fn min_edge_cut(g: &Graph) -> (usize, Vec<bool>) {
    let n = g.n();
    if n <= 1 || !is_connected(g) {
        // Convention: empty side.
        return (0, vec![false; n]);
    }
    let mut template = Dinic::new(n);
    for (_, u, v) in g.edge_list() {
        template.add_undirected(u, v, 1);
    }
    let s: Node = 0;
    let (value, side) = (1..n as Node)
        .into_par_iter()
        .map(|t| {
            let mut net = template.clone();
            let f = net.max_flow(s, t) as usize;
            (f, net.min_cut_side(s))
        })
        .min_by_key(|&(f, _)| f)
        .expect("n >= 2");
    (value, side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barbell, clique_chain, complete, cycle, harary, hypercube, path};

    #[test]
    fn known_families() {
        assert_eq!(edge_connectivity(&complete(7)), 6);
        assert_eq!(edge_connectivity(&cycle(9)), 2);
        assert_eq!(edge_connectivity(&path(9)), 1);
        assert_eq!(edge_connectivity(&hypercube(3)), 3);
        assert_eq!(edge_connectivity(&harary(6, 30)), 6);
    }

    #[test]
    fn disconnected_is_zero() {
        let g = crate::builder::GraphBuilder::new(3)
            .edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(edge_connectivity(&g), 0);
        let (v, _) = min_edge_cut(&g);
        assert_eq!(v, 0);
    }

    #[test]
    fn min_cut_side_is_a_real_cut_of_min_size() {
        let g = clique_chain(3, 5, 2);
        let (lam, side) = min_edge_cut(&g);
        assert_eq!(lam, 2);
        // The returned side must actually cut exactly lam edges.
        let crossing = g
            .edge_list()
            .filter(|&(_, u, v)| side[u as usize] != side[v as usize])
            .count();
        assert_eq!(crossing, lam);
        // Proper cut: both sides nonempty.
        assert!(side.iter().any(|&x| x));
        assert!(side.iter().any(|&x| !x));
    }

    #[test]
    fn barbell_cut_is_the_bridge() {
        let g = barbell(4, 2);
        let (lam, side) = min_edge_cut(&g);
        assert_eq!(lam, 1);
        let crossing = g
            .edge_list()
            .filter(|&(_, u, v)| side[u as usize] != side[v as usize])
            .count();
        assert_eq!(crossing, 1);
    }

    #[test]
    fn lambda_never_exceeds_min_degree() {
        for g in [harary(4, 16), clique_chain(2, 4, 3), hypercube(4)] {
            assert!(edge_connectivity(&g) <= g.min_degree());
        }
    }
}
