//! Karger's randomized contraction min cut.
//!
//! The paper's key lemma (Lemma 5) is explicitly *"a strengthening of
//! Karger's well-known connectivity under random edge sampling result
//! \[Kar99\]"*, and Karger's contraction viewpoint underlies the whole
//! sampling-probability calculus (`p = Θ(log n/λ)`). This module provides
//! the classic algorithm both as an independent cross-check for the Dinic
//! ground truth and as the Monte-Carlo λ estimator experiments can use on
//! graphs too large for exact flows.
//!
//! One contraction run succeeds with probability ≥ `2/n²`; running
//! `O(n² ln n)` times makes failure negligible. We expose the repetition
//! count so tests can trade confidence for time.

use crate::algo::components::UnionFind;
use crate::graph::{Graph, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One random contraction down to two super-nodes; returns the number of
/// crossing edges (an upper bound on λ) and one side of the cut.
pub fn karger_contract_once(g: &Graph, seed: u64) -> (usize, Vec<bool>) {
    let n = g.n();
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Random permutation of edges; union endpoints until 2 components
    // remain (equivalent to repeated uniform contraction).
    let mut order: Vec<u32> = (0..g.m() as u32).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut uf = UnionFind::new(n);
    let mut remaining = n;
    for &e in &order {
        if remaining == 2 {
            break;
        }
        let (u, v) = g.endpoints(e);
        if uf.union(u, v) {
            remaining -= 1;
        }
    }
    // Count crossing edges and extract the side of node 0's component.
    let root0 = uf.find(0);
    let side: Vec<bool> = (0..n as Node).map(|v| uf.find(v) == root0).collect();
    let crossing = g
        .edge_list()
        .filter(|&(_, u, v)| side[u as usize] != side[v as usize])
        .count();
    (crossing, side)
}

/// Monte-Carlo global min cut: best of `repetitions` contractions.
/// With `repetitions = Ω(n² ln n)` the result equals λ w.h.p.; smaller
/// counts give a cheap upper-bound estimator.
pub fn karger_min_cut(g: &Graph, repetitions: usize, seed: u64) -> (usize, Vec<bool>) {
    assert!(repetitions >= 1);
    let mut best = usize::MAX;
    let mut best_side = Vec::new();
    for r in 0..repetitions {
        let (cut, side) = karger_contract_once(g, seed.wrapping_add(r as u64 * 0x9E37_79B9));
        if cut < best {
            best = cut;
            best_side = side;
        }
    }
    (best, best_side)
}

/// The standard repetition count for w.h.p. correctness: `⌈n²·ln n⌉ / 2`.
pub fn karger_whp_repetitions(n: usize) -> usize {
    let nf = n.max(2) as f64;
    ((nf * nf * nf.ln()) / 2.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::connectivity::edge_connectivity;
    use crate::generators::{barbell, clique_chain, cycle, harary};

    #[test]
    fn contraction_returns_a_real_cut() {
        let g = harary(6, 24);
        let (cut, side) = karger_contract_once(&g, 3);
        assert!(side.iter().any(|&x| x));
        assert!(side.iter().any(|&x| !x));
        assert!(cut >= 6, "any cut is ≥ λ");
    }

    #[test]
    fn finds_the_bridge_on_barbell() {
        // λ = 1 with a unique min cut: contraction finds it quickly.
        let g = barbell(6, 3);
        let (cut, _) = karger_min_cut(&g, 60, 5);
        assert_eq!(cut, 1);
    }

    #[test]
    fn matches_dinic_on_moderate_graphs() {
        for (g, reps) in [
            (cycle(12), 50),
            (clique_chain(3, 6, 2), 200),
            (harary(4, 18), 400),
        ] {
            let exact = edge_connectivity(&g);
            let (mc, side) = karger_min_cut(&g, reps, 11);
            assert!(mc >= exact, "Karger is an upper bound");
            assert_eq!(mc, exact, "enough repetitions must find λ = {exact}");
            // The returned side realizes the reported cut value.
            let crossing = g
                .edge_list()
                .filter(|&(_, u, v)| side[u as usize] != side[v as usize])
                .count();
            assert_eq!(crossing, mc);
        }
    }

    #[test]
    fn repetition_formula() {
        assert!(karger_whp_repetitions(10) >= 100);
        assert!(karger_whp_repetitions(2) >= 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = harary(4, 16);
        assert_eq!(karger_contract_once(&g, 9).0, karger_contract_once(&g, 9).0);
    }
}
