//! Diameter computation: exact (parallel all-sources BFS) and the classic
//! 2-sweep lower bound for graphs too large for the exact method.
//!
//! Experiment E1/E2 verify Theorem 2's `O((Cn log n)/δ)` subgraph-diameter
//! bound; these are the measurement tools.

use crate::algo::bfs::{bfs_distances, UNREACHABLE};
use crate::graph::{Graph, Node};
use rayon::prelude::*;

/// Eccentricity of `v` (max BFS distance), or `None` if some node is
/// unreachable from `v`.
pub fn eccentricity(g: &Graph, v: Node) -> Option<u32> {
    let d = bfs_distances(g, v);
    let mut max = 0;
    for &x in &d {
        if x == UNREACHABLE {
            return None;
        }
        max = max.max(x);
    }
    Some(max)
}

/// Exact diameter via BFS from every node, parallelized over sources.
/// Returns `None` if the graph is disconnected or empty.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    (0..n as Node)
        .into_par_iter()
        .map(|v| eccentricity(g, v))
        .try_reduce(|| 0, |a, b| Some(a.max(b)))
}

/// Exact diameter of the subgraph on the same nodes induced by the edges
/// with `allow[e] = true`. `None` if that subgraph is disconnected.
pub fn diameter_exact_restricted(g: &Graph, allow: &[bool]) -> Option<u32> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    (0..n as Node)
        .into_par_iter()
        .map(|src| {
            let t = crate::algo::bfs::bfs_tree_restricted(g, src, |e| allow[e as usize]);
            if t.is_spanning() {
                Some(t.height())
            } else {
                None
            }
        })
        .try_reduce(|| 0, |a, b| Some(a.max(b)))
}

/// 2-sweep on the subgraph induced by `allowed` edges. **Exact** when that
/// subgraph is a tree (the classic double-BFS tree-diameter algorithm);
/// a lower bound otherwise. `None` if the subgraph does not span.
pub fn two_sweep_lower_bound_restricted(g: &Graph, start: Node, allowed: &[bool]) -> Option<u32> {
    let t1 = crate::algo::bfs::bfs_tree_restricted(g, start, |e| allowed[e as usize]);
    if !t1.is_spanning() {
        return None;
    }
    let far = (0..g.n())
        .max_by_key(|&v| t1.depth[v])
        .expect("nonempty graph") as Node;
    let t2 = crate::algo::bfs::bfs_tree_restricted(g, far, |e| allowed[e as usize]);
    Some(t2.height())
}

/// 2-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest node found. Cheap (`2` BFS) and usually within a small factor
/// of the true diameter; exact on trees.
pub fn two_sweep_lower_bound(g: &Graph, start: Node) -> Option<u32> {
    let d1 = bfs_distances(g, start);
    let mut far = start;
    let mut best = 0;
    for (v, &x) in d1.iter().enumerate() {
        if x == UNREACHABLE {
            return None;
        }
        if x > best {
            best = x;
            far = v as Node;
        }
    }
    let d2 = bfs_distances(g, far);
    d2.iter().copied().max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, path, torus2d};

    #[test]
    fn exact_on_known_families() {
        assert_eq!(diameter_exact(&path(10)), Some(9));
        assert_eq!(diameter_exact(&cycle(10)), Some(5));
        assert_eq!(diameter_exact(&complete(10)), Some(1));
        assert_eq!(diameter_exact(&torus2d(6, 8)), Some(3 + 4));
    }

    #[test]
    fn disconnected_returns_none() {
        let g = crate::builder::GraphBuilder::new(4)
            .edge(0, 1)
            .edge(2, 3)
            .build()
            .unwrap();
        assert_eq!(diameter_exact(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
        assert_eq!(two_sweep_lower_bound(&g, 0), None);
    }

    #[test]
    fn two_sweep_exact_on_paths() {
        let g = path(17);
        assert_eq!(two_sweep_lower_bound(&g, 8), Some(16));
    }

    #[test]
    fn two_sweep_is_lower_bound() {
        let g = torus2d(5, 7);
        let exact = diameter_exact(&g).unwrap();
        let lb = two_sweep_lower_bound(&g, 0).unwrap();
        assert!(lb <= exact);
        assert!(lb >= exact / 2); // classic guarantee on connected graphs
    }

    #[test]
    fn restricted_diameter() {
        let g = cycle(8);
        let all = vec![true; g.m()];
        assert_eq!(diameter_exact_restricted(&g, &all), Some(4));
        let mut missing_one = all.clone();
        missing_one[0] = false;
        // Cycle minus an edge = path of 8 nodes.
        assert_eq!(diameter_exact_restricted(&g, &missing_one), Some(7));
        let mut missing_two = missing_one.clone();
        missing_two[4] = false;
        assert_eq!(diameter_exact_restricted(&g, &missing_two), None);
    }
}
