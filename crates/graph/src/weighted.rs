//! Weighted graphs: a [`Graph`] plus a parallel edge-weight vector.
//!
//! Used by the weighted-APSP application (§4.2: Baswana–Sen spanners) and
//! the cut sparsifier (§4.3: Koutis–Xu style, where resampling multiplies
//! weights). Weights are `f64` because sparsifier iterations scale them by
//! powers of 4; the paper's integer-weight lower bound (Theorem 9) only
//! needs exact representation of integers up to `n^c`, which `f64` holds
//! exactly for every size we simulate.

use crate::graph::{Edge, Graph, Node};

/// An undirected graph with positive edge weights, sharing [`Graph`]'s CSR
/// structure; `weights[e]` is the weight of edge `e`.
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<f64>,
}

impl WeightedGraph {
    /// Wrap a graph with explicit weights (must be positive and match `m`).
    pub fn new(graph: Graph, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            graph.m(),
            "weight vector length must equal edge count"
        );
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "edge weights must be positive and finite"
        );
        WeightedGraph { graph, weights }
    }

    /// All weights = 1 (the unweighted case viewed as weighted).
    pub fn unit(graph: Graph) -> Self {
        let m = graph.m();
        WeightedGraph {
            graph,
            weights: vec![1.0; m],
        }
    }

    /// The underlying unweighted structure.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: Edge) -> f64 {
        self.weights[e as usize]
    }

    /// The full weight vector, edge-id indexed.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    #[inline]
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// Iterate `(neighbor, edge, weight)` triples of `v`.
    pub fn edges_of(&self, v: Node) -> impl Iterator<Item = (Node, Edge, f64)> + '_ {
        self.graph
            .edges_of(v)
            .map(move |(u, e)| (u, e, self.weights[e as usize]))
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Weight of the cut `(S, V∖S)` where `in_s[v]` marks membership of `S`.
    pub fn cut_weight(&self, in_s: &[bool]) -> f64 {
        assert_eq!(in_s.len(), self.n());
        self.graph
            .edge_list()
            .filter(|&(_, u, v)| in_s[u as usize] != in_s[v as usize])
            .map(|(e, _, _)| self.weights[e as usize])
            .sum()
    }

    /// A new weighted graph with the same nodes containing only edges
    /// selected by `keep`, with weights transformed by `map_w`.
    pub fn filter_map_edges<K, W>(&self, mut keep: K, mut map_w: W) -> WeightedGraph
    where
        K: FnMut(Edge) -> bool,
        W: FnMut(Edge, f64) -> f64,
    {
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        // Collect in canonical (sorted) edge order so that rebuilt edge ids
        // line up with the collected weight order.
        for (e, u, v) in self.graph.edge_list() {
            if keep(e) {
                edges.push((u, v));
                weights.push(map_w(e, self.weights[e as usize]));
            }
        }
        let g = crate::builder::GraphBuilder::new(self.n())
            .edges(edges.iter().copied())
            .build()
            .expect("filtered subgraph of a valid graph is valid");
        // `edge_list()` yields edges in canonical sorted order and the
        // builder assigns ids in that same order, so weights align.
        WeightedGraph::new(g, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn square() -> Graph {
        GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 3), (0, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn unit_weights() {
        let wg = WeightedGraph::unit(square());
        assert_eq!(wg.total_weight(), 4.0);
        for e in 0..wg.m() as u32 {
            assert_eq!(wg.weight(e), 1.0);
        }
    }

    #[test]
    fn cut_weight_of_half_square() {
        let wg = WeightedGraph::unit(square());
        let in_s = vec![true, true, false, false];
        // Edges crossing {0,1}|{2,3}: (1,2) and (0,3).
        assert_eq!(wg.cut_weight(&in_s), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weight() {
        WeightedGraph::new(square(), vec![1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn filter_map_preserves_alignment() {
        let g = square();
        let weights: Vec<f64> = (0..g.m()).map(|e| (e + 1) as f64).collect();
        let wg = WeightedGraph::new(g, weights);
        let doubled = wg.filter_map_edges(|e| e != 0, |_, w| 2.0 * w);
        assert_eq!(doubled.m(), 3);
        // Each surviving edge's weight must be exactly twice its original.
        for (e_new, u, v) in doubled.graph().edge_list() {
            let orig = wg
                .graph()
                .edge_list()
                .find(|&(_, a, b)| (a, b) == (u, v))
                .unwrap()
                .0;
            assert_eq!(doubled.weight(e_new), 2.0 * wg.weight(orig));
        }
    }
}
