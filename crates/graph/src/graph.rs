//! The core CSR graph type.
//!
//! Layout follows the data-oriented idioms of the hpc-parallel guides: all
//! adjacency data lives in three flat arrays (`offsets`, `adj_node`,
//! `adj_edge`), so per-node neighbor scans are contiguous and the whole
//! structure is trivially shareable across rayon workers (`&Graph` is `Sync`).

use std::fmt;

/// A node identifier, `0..n`. Plain integers (not newtypes) keep hot loops
/// free of wrapper friction; public APIs document which argument is which.
pub type Node = u32;

/// An undirected-edge identifier, `0..m`. Edge ids are stable and dense so
/// edge-indexed data (partition colors, congestion counters, tree membership)
/// can live in flat `Vec`s.
pub type Edge = u32;

/// A *port* is the index of an incident edge in a node's adjacency list
/// (`0..deg(v)`). The CONGEST simulator addresses outgoing messages by port.
pub type Port = u32;

/// Sentinel for "no node" (used in parent arrays and similar).
pub const INVALID_NODE: Node = u32::MAX;

/// An immutable simple, undirected, unweighted graph in CSR form.
///
/// Invariants (enforced by [`crate::builder::GraphBuilder`]):
/// * no self-loops, no parallel edges (the paper's Lemma 5 *requires*
///   simplicity — see the multigraph counterexample in Appendix A);
/// * adjacency lists are sorted by neighbor id;
/// * `endpoints[e] = (u, v)` with `u < v` for every edge `e`.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `adj_node`/`adj_edge` for node `v`.
    pub(crate) offsets: Vec<u32>,
    /// Flattened adjacency: neighbor node ids.
    pub(crate) adj_node: Vec<Node>,
    /// Flattened adjacency: the undirected edge id of each incident edge.
    pub(crate) adj_edge: Vec<Edge>,
    /// Canonical endpoints `(u, v)`, `u < v`, indexed by edge id.
    pub(crate) endpoints: Vec<(Node, Node)>,
    /// For each directed arc position `i` (an index into `adj_node`), the
    /// arc position of the reverse arc. Lets the simulator deliver a message
    /// sent on port `p` of `u` straight into the right inbox slot of `v`.
    pub(crate) reverse_arc: Vec<u32>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The start of `v`'s arc range in the flattened adjacency arrays.
    #[inline]
    pub fn arc_offset(&self, v: Node) -> usize {
        self.offsets[v as usize] as usize
    }

    /// Total number of directed arcs (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.adj_node.len()
    }

    /// Neighbor ids of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj_node[lo..hi]
    }

    /// Incident edge ids of `v`, aligned with [`Graph::neighbors`].
    #[inline]
    pub fn incident_edges(&self, v: Node) -> &[Edge] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj_edge[lo..hi]
    }

    /// Iterate `(neighbor, edge_id)` pairs for `v`.
    #[inline]
    pub fn edges_of(&self, v: Node) -> impl Iterator<Item = (Node, Edge)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.incident_edges(v).iter().copied())
    }

    /// The neighbor reached from `v` through port `p`.
    #[inline]
    pub fn neighbor_at(&self, v: Node, p: Port) -> Node {
        self.adj_node[self.offsets[v as usize] as usize + p as usize]
    }

    /// The undirected edge behind port `p` of `v`.
    #[inline]
    pub fn edge_at(&self, v: Node, p: Port) -> Edge {
        self.adj_edge[self.offsets[v as usize] as usize + p as usize]
    }

    /// Given the arc position of `(v → u)`, the arc position of `(u → v)`.
    #[inline]
    pub fn reverse_arc(&self, arc: usize) -> usize {
        self.reverse_arc[arc] as usize
    }

    /// The whole reverse-arc permutation (an involution without fixed
    /// points on simple graphs). The simulator scatters each send through
    /// this table straight into the receiver's inbox slot.
    #[inline]
    pub fn reverse_arcs(&self) -> &[u32] {
        &self.reverse_arc
    }

    /// The flattened arc → target-node table: entry `i` is the neighbor
    /// reached through arc position `i` (so `arc_targets()[arc_offset(v) + p]`
    /// is `neighbor_at(v, p)`). The simulator's broadcast plane resolves
    /// "who sits behind this port" through this table.
    #[inline]
    pub fn arc_targets(&self) -> &[Node] {
        &self.adj_node
    }

    /// Canonical endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: Edge) -> (Node, Node) {
        self.endpoints[e as usize]
    }

    /// The endpoint of `e` that is not `v`. Panics if `v` is not an endpoint.
    #[inline]
    pub fn other_endpoint(&self, e: Edge, v: Node) -> Node {
        let (a, b) = self.endpoints[e as usize];
        if a == v {
            b
        } else {
            debug_assert_eq!(b, v, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// The port of `v` whose incident edge leads to `u`, if `{u,v} ∈ E`.
    /// Binary search over the sorted neighbor list: `O(log deg v)`.
    pub fn port_to(&self, v: Node, u: Node) -> Option<Port> {
        self.neighbors(v).binary_search(&u).ok().map(|i| i as Port)
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        if u == v {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate all edges as `(edge_id, u, v)` with `u < v`.
    pub fn edge_list(&self) -> impl Iterator<Item = (Edge, Node, Node)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e as Edge, u, v))
    }

    /// Minimum degree δ of the graph.
    pub fn min_degree(&self) -> usize {
        (0..self.n() as Node)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Maximum degree Δ of the graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as Node)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m/n`.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// A subgraph on the *same node set* containing exactly the edges for
    /// which `keep(e)` is true. Node ids and count are preserved; edge ids
    /// are renumbered densely, with `edge_map[new] = old` returned alongside.
    pub fn edge_subgraph<F: FnMut(Edge) -> bool>(&self, mut keep: F) -> (Graph, Vec<Edge>) {
        let mut kept_edges = Vec::new();
        let mut edges = Vec::new();
        for (e, u, v) in self.edge_list() {
            if keep(e) {
                kept_edges.push(e);
                edges.push((u, v));
            }
        }
        let g = crate::builder::GraphBuilder::new(self.n())
            .edges(edges.iter().copied())
            .build()
            .expect("subgraph of a valid graph is valid");
        (g, kept_edges)
    }

    /// Sum of degrees; sanity helper (`= 2m`).
    pub fn degree_sum(&self) -> usize {
        self.adj_node.len()
    }

    /// A 64-bit fingerprint of the canonical CSR: two graphs built from
    /// the same node count and edge multiset (in any insertion order)
    /// hash equal, and any difference in adjacency, edge numbering, or
    /// port order changes the digest with full avalanche. Session pools
    /// key warm engine state by this value.
    pub fn fingerprint(&self) -> u64 {
        #[inline]
        fn mix(x: u64) -> u64 {
            // splitmix64 finalizer.
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut h = mix(0xF1_9927 ^ self.n() as u64) ^ mix(0x9127_0C5A ^ self.m() as u64);
        for &o in &self.offsets {
            h = mix(h ^ o as u64);
        }
        for (&v, &e) in self.adj_node.iter().zip(&self.adj_edge) {
            h = mix(h ^ ((v as u64) << 32 | e as u64));
        }
        h
    }

    /// Structurally re-validate the CSR invariants every consumer of
    /// this type assumes: monotone offsets covering the arc arrays,
    /// per-node adjacency strictly sorted (simple graph, binary-search
    /// ports), edge ids in range with endpoints matching the adjacency,
    /// and the reverse-arc permutation a true involution pairing the
    /// two directions of each edge.
    ///
    /// Construction through [`crate::GraphBuilder`] and in-place repair
    /// both maintain these invariants; this check exists for graphs
    /// arriving from *outside* the process — snapshot restore re-runs it
    /// before marrying engine state to a deserialized topology, so a
    /// corrupt or hand-forged frame is refused instead of producing an
    /// engine whose scatter permutation writes out of bounds.
    pub fn validate_csr(&self) -> Result<(), &'static str> {
        let n = self.n();
        let arcs = self.adj_node.len();
        if self.offsets.first() != Some(&0) || self.offsets[n] as usize != arcs {
            return Err("offsets do not cover the arc arrays");
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets are not monotone");
        }
        if self.adj_edge.len() != arcs || self.reverse_arc.len() != arcs {
            return Err("arc arrays disagree in length");
        }
        if arcs != 2 * self.m() {
            return Err("arc count is not twice the edge count");
        }
        for v in 0..n as Node {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            for a in lo..hi {
                let w = self.adj_node[a];
                if w as usize >= n || w == v {
                    return Err("neighbor out of range or self-loop");
                }
                if a > lo && self.adj_node[a - 1] >= w {
                    return Err("adjacency not strictly sorted");
                }
                let e = self.adj_edge[a] as usize;
                if e >= self.m() {
                    return Err("edge id out of range");
                }
                if self.endpoints[e] != (v.min(w), v.max(w)) {
                    return Err("endpoints disagree with adjacency");
                }
                let r = self.reverse_arc[a] as usize;
                if r >= arcs
                    || self.adj_node[r] != v
                    || self.adj_edge[r] as usize != e
                    || self.reverse_arc[r] as usize != a
                {
                    return Err("reverse-arc permutation is not an involution");
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("min_degree", &self.min_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    fn triangle_plus_tail() -> crate::Graph {
        // 0-1, 1-2, 0-2 triangle; 2-3 tail.
        GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.degree_sum(), 8);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn neighbors_sorted_and_edges_aligned() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        for v in 0..g.n() as u32 {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            for (u, e) in g.edges_of(v) {
                let (a, b) = g.endpoints(e);
                assert!(a < b);
                assert!((a == v && b == u) || (a == u && b == v));
            }
        }
    }

    #[test]
    fn has_edge_and_ports() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
        let p = g.port_to(2, 3).unwrap();
        assert_eq!(g.neighbor_at(2, p), 3);
        assert_eq!(g.port_to(0, 3), None);
    }

    #[test]
    fn reverse_arcs_are_involutive() {
        let g = triangle_plus_tail();
        for arc in 0..g.num_arcs() {
            let rev = g.reverse_arc(arc);
            assert_eq!(g.reverse_arc(rev), arc);
            assert_ne!(rev, arc);
        }
    }

    #[test]
    fn other_endpoint() {
        let g = triangle_plus_tail();
        let (e, u, v) = g.edge_list().next().unwrap();
        assert_eq!(g.other_endpoint(e, u), v);
        assert_eq!(g.other_endpoint(e, v), u);
    }

    #[test]
    fn edge_subgraph_keeps_nodes_renumbers_edges() {
        let g = triangle_plus_tail();
        let (sub, map) = g.edge_subgraph(|e| e % 2 == 0);
        assert_eq!(sub.n(), 4);
        assert_eq!(sub.m(), map.len());
        for (new_e, _, _) in sub.edge_list() {
            let old = map[new_e as usize];
            let (u, v) = sub.endpoints(new_e);
            assert_eq!(g.endpoints(old), (u, v));
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }
}
