//! Shard-aware partitioning of the CSR arc layout.
//!
//! The CONGEST engine runs both phases of a round — node stepping and the
//! delivery/metering sweep — as parallel-for over *shards*: contiguous
//! node ranges whose flattened arc ranges are balanced by arc count. A
//! [`ShardPlan`] additionally assigns every shard a disjoint range of
//! **occupancy words** (64 arcs per `u64` in the arc-indexed bitsets), so
//! a shard can fold, meter, and zero its own region of the message plane
//! with plain unsynchronized stores: word ownership never straddles two
//! shards even when a node boundary falls mid-word.

use crate::graph::{Graph, Node};
use std::ops::Range;

/// A partition of a graph's nodes into contiguous shards, balanced by arc
/// count and equipped with disjoint occupancy-word ranges covering all
/// arcs. Built once per run by [`Graph::shard_plan`]; immutable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard `s` owns nodes `node_starts[s]..node_starts[s + 1]`.
    node_starts: Vec<Node>,
    /// Shard `s` owns occupancy words `word_starts[s]..word_starts[s + 1]`
    /// of any arc-indexed bitset (and therefore arc bytes
    /// `64 * word_starts[s]..(64 * word_starts[s + 1]).min(arcs)` of any
    /// arc-indexed byte mask).
    word_starts: Vec<u32>,
    /// Shard `s` owns words `node_word_starts[s]..node_word_starts[s + 1]`
    /// of any *node*-indexed bitset (one bit per node — the engine's
    /// broadcast-presence plane). Aligned the same way as `word_starts`:
    /// boundary words go to the later shard.
    node_word_starts: Vec<u32>,
    /// Total arc count (`= 2m`), the length every arc-indexed slab has.
    arcs: usize,
    /// Node count.
    n: usize,
    /// Maximum degree Δ at plan-build time. The wide-batch kernel sizes
    /// its per-shard gather/outbox scratch (Δ message words + Δ/64
    /// occupancy words per direction) from this instead of rescanning
    /// every node per run.
    max_deg: usize,
}

impl ShardPlan {
    /// Number of shards (≥ 1; empty graphs get one empty shard).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.node_starts.len() - 1
    }

    /// The node range shard `s` steps.
    #[inline]
    pub fn nodes(&self, s: usize) -> Range<Node> {
        self.node_starts[s]..self.node_starts[s + 1]
    }

    /// The occupancy-word range shard `s` sweeps (indexes into a
    /// `words_for(arcs)`-long `u64` bitset).
    #[inline]
    pub fn words(&self, s: usize) -> Range<usize> {
        self.word_starts[s] as usize..self.word_starts[s + 1] as usize
    }

    /// The arc range covered by shard `s`'s occupancy words (indexes into
    /// any arc-indexed slab; the last shard's range is clipped to `arcs`).
    #[inline]
    pub fn arcs_of(&self, s: usize) -> Range<usize> {
        let lo = (self.word_starts[s] as usize) * 64;
        let hi = ((self.word_starts[s + 1] as usize) * 64).min(self.arcs);
        lo..hi.max(lo)
    }

    /// Total arcs covered by the plan.
    #[inline]
    pub fn arcs(&self) -> usize {
        self.arcs
    }

    /// Number of arcs in shard `s`'s word-aligned sweep region — the
    /// per-shard share of any arc-indexed slab pass.
    #[inline]
    pub fn arc_count(&self, s: usize) -> usize {
        self.arcs_of(s).len()
    }

    /// Number of nodes shard `s` steps.
    #[inline]
    pub fn node_count(&self, s: usize) -> usize {
        let r = self.nodes(s);
        (r.end - r.start) as usize
    }

    /// Upper bound on the number of per-arc sends the nodes of shard `s`
    /// can stage in one round (their total out-degree). The true value is
    /// `offsets[nodes.end] - offsets[nodes.start]`; the plan only keeps
    /// word-aligned boundaries, so this pads by at most 63 arcs at each
    /// cut. Used to size per-shard active-send worklists without the
    /// `shards × total_arcs` blowup a uniform cap would cost.
    #[inline]
    pub fn out_arc_bound(&self, s: usize) -> usize {
        (self.arc_count(s) + 63).min(self.arcs)
    }

    /// Maximum degree Δ of the graph the plan was built (or last
    /// rebalanced) for — an upper bound on any node's port count, cached
    /// so per-run scratch sizing never rescans the degree array.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_deg
    }

    /// The node-bitset word range shard `s` sweeps (indexes into a
    /// `words_for(n)`-long `u64` bitset over nodes).
    #[inline]
    pub fn node_words(&self, s: usize) -> Range<usize> {
        self.node_word_starts[s] as usize..self.node_word_starts[s + 1] as usize
    }

    /// The node range covered by shard `s`'s node-bitset words (clipped to
    /// `n`; boundary words belong to the later shard, so this range can
    /// differ slightly from [`ShardPlan::nodes`]).
    #[inline]
    pub fn node_word_nodes(&self, s: usize) -> Range<usize> {
        let lo = (self.node_word_starts[s] as usize) * 64;
        let hi = ((self.node_word_starts[s + 1] as usize) * 64).min(self.n);
        lo..hi.max(lo)
    }

    /// Recompute this plan in place for (a possibly mutated) `g`, keeping
    /// the current shard count and reusing every boundary `Vec` — the
    /// churn path's allocation-free alternative to building a fresh plan.
    /// Produces exactly `g.shard_plan(self.num_shards())`.
    pub fn rebalance(&mut self, g: &Graph) {
        let shards = self.num_shards();
        self.node_starts.clear();
        self.word_starts.clear();
        self.node_word_starts.clear();
        self.arcs = g.num_arcs();
        self.n = g.n();
        self.max_deg = g.max_degree();
        fill_plan(
            g,
            shards,
            &mut self.node_starts,
            &mut self.word_starts,
            &mut self.node_word_starts,
        );
    }
}

/// Shared boundary computation for [`Graph::shard_plan`] and
/// [`ShardPlan::rebalance`]: push the `s_count + 1` node/word/node-word
/// boundaries for `g` into the (empty) vectors.
fn fill_plan(
    g: &Graph,
    shards: usize,
    node_starts: &mut Vec<Node>,
    word_starts: &mut Vec<u32>,
    node_word_starts: &mut Vec<u32>,
) {
    let n = g.n();
    let arcs = g.num_arcs();
    let s_count = shards.clamp(1, n.max(1));
    let total_words = arcs.div_ceil(64);
    let total_node_words = n.div_ceil(64);
    node_starts.push(0u32);
    word_starts.push(0u32);
    node_word_starts.push(0u32);
    let mut prev_node = 0usize;
    for s in 1..s_count {
        // The node whose arc offset first reaches the balanced target;
        // strictly increasing so every shard owns at least one node.
        let target = (arcs * s) / s_count;
        let found = g
            .offsets
            .partition_point(|&off| (off as usize) < target)
            .clamp(prev_node + 1, n - (s_count - s));
        node_starts.push(found as u32);
        // Boundary words belong to the *later* shard, so word ranges
        // are monotone and partition `0..total_words` exactly.
        let word = (g.offsets[found] as usize / 64).min(total_words) as u32;
        word_starts.push(word.max(*word_starts.last().unwrap()));
        let node_word = (found / 64).min(total_node_words) as u32;
        node_word_starts.push(node_word.max(*node_word_starts.last().unwrap()));
        prev_node = found;
    }
    node_starts.push(n as u32);
    word_starts.push(total_words as u32);
    node_word_starts.push(total_node_words as u32);
}

impl Graph {
    /// Partition the nodes into at most `shards` contiguous shards,
    /// balanced by arc count, with disjoint word-aligned metering regions
    /// (see [`ShardPlan`]). The plan is a pure function of the graph and
    /// `shards` — engines at any pool width build the identical plan.
    pub fn shard_plan(&self, shards: usize) -> ShardPlan {
        let n = self.n();
        let arcs = self.num_arcs();
        let s_count = shards.clamp(1, n.max(1));
        let mut node_starts = Vec::with_capacity(s_count + 1);
        let mut word_starts = Vec::with_capacity(s_count + 1);
        let mut node_word_starts = Vec::with_capacity(s_count + 1);
        fill_plan(
            self,
            shards,
            &mut node_starts,
            &mut word_starts,
            &mut node_word_starts,
        );
        ShardPlan {
            node_starts,
            word_starts,
            node_word_starts,
            arcs,
            n,
            max_deg: self.max_degree(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, harary, path};

    fn check_plan(g: &Graph, shards: usize) {
        let plan = g.shard_plan(shards);
        let s_count = plan.num_shards();
        assert!(s_count >= 1 && s_count <= shards.max(1));
        // Node ranges partition 0..n.
        let mut node = 0u32;
        for s in 0..s_count {
            let r = plan.nodes(s);
            assert_eq!(r.start, node);
            assert!(r.end >= r.start);
            node = r.end;
        }
        assert_eq!(node as usize, g.n());
        // Word ranges partition 0..words_for(arcs).
        let mut word = 0usize;
        for s in 0..s_count {
            let r = plan.words(s);
            assert_eq!(r.start, word);
            word = r.end;
        }
        assert_eq!(word, g.num_arcs().div_ceil(64));
        // Arc ranges concatenate to 0..arcs.
        let mut arc = 0usize;
        for s in 0..s_count {
            let r = plan.arcs_of(s);
            assert_eq!(r.start, arc);
            arc = r.end;
        }
        assert_eq!(arc, g.num_arcs());
        // Node-word ranges partition 0..words_for(n), and their node spans
        // concatenate to 0..n.
        let mut nw = 0usize;
        let mut nn = 0usize;
        for s in 0..s_count {
            let r = plan.node_words(s);
            assert_eq!(r.start, nw);
            nw = r.end;
            let r = plan.node_word_nodes(s);
            assert_eq!(r.start, nn);
            nn = r.end;
        }
        assert_eq!(nw, g.n().div_ceil(64));
        assert_eq!(nn, g.n());
        assert_eq!(plan.max_degree(), g.max_degree());
        // Every shard with multiple requested shards owns ≥ 1 node when
        // shards ≤ n.
        if shards <= g.n() {
            for s in 0..s_count {
                assert!(!plan.nodes(s).is_empty(), "shard {s} empty");
            }
        }
    }

    #[test]
    fn plans_partition_nodes_words_and_arcs() {
        for g in [harary(6, 100), complete(40), path(9), harary(16, 257)] {
            for shards in [1usize, 2, 3, 4, 7, 8, 64, 1000] {
                check_plan(&g, shards);
            }
        }
    }

    #[test]
    fn active_count_accessors_bound_the_true_counts() {
        for g in [harary(6, 100), complete(40), path(9), harary(16, 257)] {
            for shards in [1usize, 2, 3, 7, 64] {
                let plan = g.shard_plan(shards);
                let mut arc_sum = 0usize;
                let mut node_sum = 0usize;
                for s in 0..plan.num_shards() {
                    assert_eq!(plan.arc_count(s), plan.arcs_of(s).len());
                    assert_eq!(plan.node_count(s), plan.nodes(s).len());
                    // The true out-degree sum of the shard's nodes never
                    // exceeds the word-padded bound.
                    let out: usize = plan.nodes(s).map(|v| g.degree(v)).sum();
                    assert!(
                        out <= plan.out_arc_bound(s),
                        "shard {s}: out {out} > bound {}",
                        plan.out_arc_bound(s)
                    );
                    assert!(plan.out_arc_bound(s) <= g.num_arcs());
                    arc_sum += plan.arc_count(s);
                    node_sum += plan.node_count(s);
                }
                assert_eq!(arc_sum, g.num_arcs());
                assert_eq!(node_sum, g.n());
            }
        }
    }

    #[test]
    fn arc_balance_is_reasonable() {
        let g = harary(16, 4096);
        let plan = g.shard_plan(8);
        assert_eq!(plan.num_shards(), 8);
        let per = g.num_arcs() / 8;
        for s in 0..8 {
            let owned = plan.arcs_of(s).len();
            assert!(
                owned > per / 2 && owned < per * 2,
                "shard {s} owns {owned} arcs, target {per}"
            );
        }
    }

    #[test]
    fn rebalance_matches_fresh_plan() {
        let mut g = harary(6, 100);
        let mut plan = g.shard_plan(7);
        let mut scratch = crate::RepairScratch::new();
        // Grow one hub until the arc balance shifts, rebalancing as we go.
        for i in 0..30u32 {
            let v = 40 + i;
            if !g.has_edge(0, v) {
                g.apply_batch(&[(0, v)], &[], &mut scratch).unwrap();
            }
            plan.rebalance(&g);
            assert_eq!(plan, g.shard_plan(7), "after add {i}");
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = crate::builder::GraphBuilder::new(0).build().unwrap();
        let plan = g.shard_plan(4);
        assert_eq!(plan.num_shards(), 1);
        assert!(plan.nodes(0).is_empty());
        assert!(plan.words(0).is_empty());

        let g = path(2);
        check_plan(&g, 8);
    }
}
