//! The Theorem 9 weighted lower-bound instance (paper §4.4).
//!
//! Theorem 9: for any λ and n there is a λ-edge-connected weighted graph
//! on which α-approximate weighted APSP needs `Ω(n/(λ·log α))` rounds,
//! because node `v₁` must learn `k_max = Θ(log n/log α)` hidden bits per
//! node through only λ incident edges. Construction (weights integers in
//! `[n^c]`):
//!
//! * `v₁ — v₂` with weight 1;
//! * `v₁ — {v₃,…,v_{λ+1}}` with weight `W = n^c` (λ−1 edges, making
//!   `deg(v₁) = λ`, which realizes the edge connectivity);
//! * a clique on `{v₃,…,v_n}` with weight `W`;
//! * `v₂ — v_i` with weight `B^{k_i}` for hidden uniform
//!   `k_i ∈ {1,…,k_max}`, where `B = ⌈2α⌉`.
//!
//! The shortest `v₁ → v_i` path is `v₁ v₂ v_i` of length `1 + B^{k_i}`,
//! so **any** `(α,0)`-approximate distance estimate at `v₁` pins `k_i`
//! exactly: `d̃ − 1 ∈ [B^k, αB^k + α − 1] ⊂ [B^k, B^{k+1})`, hence
//! `k̂ = ⌊log_B(d̃ − 1)⌋` ([`decode_theorem9`]). The experiment harness
//! uses this to *demonstrate* the information-theoretic content: solving
//! approximate APSP forces Ω(k_max) bits per node across the λ-cut.

use crate::builder::GraphBuilder;
use crate::graph::Node;
use crate::weighted::WeightedGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated Theorem 9 instance with its hidden payload.
#[derive(Debug, Clone)]
pub struct Theorem9Instance {
    pub graph: WeightedGraph,
    /// The approximation ratio the instance defeats.
    pub alpha: f64,
    /// Weight base `B = ⌈2α⌉`.
    pub base: u64,
    /// Largest exponent hidden (`B^{k_max} ≤ n^c − 2`).
    pub k_max: u32,
    /// The hidden exponents `k_i`, indexed by node (0 for v₁, v₂).
    pub hidden_k: Vec<u32>,
    /// The big weight `W = n^c`.
    pub big_weight: f64,
}

/// Build a Theorem 9 instance. `n ≥ λ + 2`, `λ ≥ 2`, `alpha ≥ 1`,
/// `c > 0` sizes the weight cap `W = n^c` (kept ≤ 2^52 for exact f64).
pub fn theorem9_instance(
    n: usize,
    lambda: usize,
    alpha: f64,
    c: f64,
    seed: u64,
) -> Theorem9Instance {
    assert!(lambda >= 2 && n >= lambda + 2);
    assert!(alpha >= 1.0 && c > 0.0);
    let big = (n as f64).powf(c).floor();
    assert!(big >= 8.0 && big < 2f64.powi(52), "weight cap out of range");
    let base = (2.0 * alpha).ceil() as u64;
    let mut k_max = 0u32;
    while (base as f64).powi(k_max as i32 + 1) <= big - 2.0 {
        k_max += 1;
    }
    assert!(k_max >= 1, "n^c too small to hide even one digit (raise c)");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut hidden_k = vec![0u32; n];
    let mut b = GraphBuilder::new(n);
    let mut weights: Vec<((Node, Node), f64)> = Vec::new();
    let push =
        |b: &mut GraphBuilder, w: &mut Vec<((Node, Node), f64)>, u: Node, v: Node, wt: f64| {
            b.push_edge(u, v);
            let key = (u.min(v), u.max(v));
            w.push((key, wt));
        };
    // v1 = 0, v2 = 1, clique nodes 2..n.
    push(&mut b, &mut weights, 0, 1, 1.0);
    for i in 2..(lambda + 1) as Node {
        push(&mut b, &mut weights, 0, i, big);
    }
    for i in 2..n as Node {
        for j in (i + 1)..n as Node {
            push(&mut b, &mut weights, i, j, big);
        }
    }
    for i in 2..n as Node {
        let k = rng.gen_range(1..=k_max);
        hidden_k[i as usize] = k;
        push(&mut b, &mut weights, 1, i, (base as f64).powi(k as i32));
    }
    let graph = b.build().expect("theorem 9 instance is simple");
    // Align weights with the builder's canonical edge ids.
    weights.sort_unstable_by_key(|&(key, _)| key);
    let w: Vec<f64> = weights.into_iter().map(|(_, wt)| wt).collect();
    Theorem9Instance {
        graph: WeightedGraph::new(graph, w),
        alpha,
        base,
        k_max,
        hidden_k,
        big_weight: big,
    }
}

/// Recover the hidden exponents from any `(α,0)`-approximate estimates of
/// `d(v₁, ·)` (row of v₁, indexed by node). Entries for v₁/v₂ are 0.
pub fn decode_theorem9(instance: &Theorem9Instance, estimates_from_v1: &[f64]) -> Vec<u32> {
    let n = instance.graph.n();
    assert_eq!(estimates_from_v1.len(), n);
    let logb = (instance.base as f64).ln();
    (0..n)
        .map(|i| {
            if i < 2 {
                return 0;
            }
            let d = estimates_from_v1[i];
            assert!(d > 1.0, "estimate at node {i} too small: {d}");
            ((d - 1.0).ln() / logb + 1e-9).floor() as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::apsp::dijkstra;
    use crate::algo::connectivity::edge_connectivity;

    #[test]
    fn structure_and_connectivity() {
        let inst = theorem9_instance(20, 4, 3.0, 2.0, 7);
        let g = inst.graph.graph();
        assert_eq!(g.n(), 20);
        // deg(v1) = λ.
        assert_eq!(g.degree(0), 4);
        assert_eq!(edge_connectivity(g), 4);
        // Hidden exponents populated for clique nodes only.
        assert_eq!(inst.hidden_k[0], 0);
        assert_eq!(inst.hidden_k[1], 0);
        assert!(inst.hidden_k[2..]
            .iter()
            .all(|&k| k >= 1 && k <= inst.k_max));
    }

    #[test]
    fn exact_distances_decode_perfectly() {
        let inst = theorem9_instance(24, 5, 2.0, 2.0, 3);
        let d = dijkstra(&inst.graph, 0);
        // Shortest v1→vi is via v2.
        for (i, &di) in d.iter().enumerate().take(24).skip(2) {
            let expect = 1.0 + (inst.base as f64).powi(inst.hidden_k[i] as i32);
            assert_eq!(di, expect, "node {i}");
        }
        let decoded = decode_theorem9(&inst, &d);
        assert_eq!(decoded[2..], inst.hidden_k[2..]);
    }

    #[test]
    fn alpha_stretched_estimates_still_decode() {
        // Adversarially stretch every distance by exactly α — decoding
        // must still pin each k_i.
        let alpha = 3.0;
        let inst = theorem9_instance(30, 6, alpha, 2.0, 11);
        let d = dijkstra(&inst.graph, 0);
        let stretched: Vec<f64> = d.iter().map(|&x| x * alpha).collect();
        // Note: d̃(v1,vi) = α(1 + B^k); d̃ − 1 = αB^k + (α−1) < B^{k+1}. ✓
        let decoded = decode_theorem9(&inst, &stretched);
        assert_eq!(decoded[2..], inst.hidden_k[2..]);
    }

    #[test]
    fn information_content_matches_theorem() {
        // k_max = Θ(log n / log α): each node hides log2(k_max) bits; the
        // Ω(n·k_max/(λ·log n)) bound is the paper's Ω(n/(λ·log α)).
        let inst = theorem9_instance(64, 4, 2.0, 2.0, 1);
        assert!(inst.k_max >= 4, "k_max = {} too small", inst.k_max);
        let tighter = theorem9_instance(64, 4, 16.0, 2.0, 1);
        assert!(
            tighter.k_max < inst.k_max,
            "larger α must hide fewer digits"
        );
    }
}
