//! Seeded graph-family generators.
//!
//! The paper's bounds are parameterized by `(n, δ, λ, D)`; experiments need
//! families where the **edge connectivity λ is known by construction** so
//! sweeps can control it directly (and the Dinic ground truth in
//! [`crate::algo::connectivity`] spot-checks it).
//!
//! Families:
//!
//! | family | δ | λ | D | role in experiments |
//! |---|---|---|---|---|
//! | [`complete`] | n−1 | n−1 | 1 | best case, sanity |
//! | [`harary`] (circulant) | k | k | ≈ n/k | the workhorse: λ swept freely |
//! | [`large_sparse`] (circulant) | 6 | 6 | O(n^⅓) | engine scaling at n up to 10⁶ |
//! | [`torus2d`] | 4 | 4 | (r+c)/2 | low fixed λ, 2-D locality |
//! | [`hypercube`] | log n | log n | log n | λ grows with n |
//! | [`clique_chain`] | ≥ bridge | bridge width | ≈ 2·#cliques | high δ, small λ (δ ≫ λ) |
//! | [`thick_path`] | λ | λ | ≈ n/λ | extremal Θ(n/λ) diameter |
//! | [`gk13_lower_bound`] | ≥ λ−1 | ≈ λ | O(log n) | Appendix B family: low D, packings need Ω(n/λ) diameter |
//! | [`random::gnp`] | ≈ np | ≈ δ w.h.p. | O(log n) | average case |
//! | [`random::random_regular`] | d | d w.h.p. | O(log n) | regular expanders |
//! | [`barbell`] | ≥ 1 | 1 | ≈ path len | the λ = 1 worst case motivating the paper |

mod deterministic;
mod lower_bound;
pub mod random;
pub mod theorem9;

pub use deterministic::{
    barbell, circulant, clique_chain, clique_ring, complete, complete_bipartite, cycle, harary,
    hypercube, large_sparse, path, thick_path, torus2d,
};
pub use lower_bound::{gk13_lower_bound, Gk13Layout};
pub use random::{gnp, gnp_connected, random_regular};
pub use theorem9::{decode_theorem9, theorem9_instance, Theorem9Instance};
