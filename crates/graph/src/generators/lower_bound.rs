//! The GK13-style lower-bound family (paper Appendix B / Theorem 13).
//!
//! Ghaffari–Kuhn [GK13, Theorem D.1] exhibit λ-edge-connected graphs with
//! diameter `O(log n)` on which **every** low-congestion tree packing
//! contains trees of diameter `Ω(n/λ)` (except `O(log n)` lucky trees). The
//! paper uses this family to show the `O((n log n)/δ)` diameter of its
//! packings (Theorem 2) is optimal up to the log factor.
//!
//! Our realization (a faithful synthetic stand-in — the original
//! construction is only sketched in GK13; documented as a substitution in
//! DESIGN.md §2):
//!
//! * a *thick path* of `L` columns, each column a λ-clique, consecutive
//!   columns joined by perfect λ-matchings — this is the "long bulk" whose
//!   every column boundary is a λ-cut;
//! * a *thin* balanced binary tree over the columns: `2^⌈log L⌉ − 1` extra
//!   single nodes wired as a complete binary tree with **single** edges,
//!   leaf `j` attached to every node of column `j·L/#leaves`; every internal
//!   tree node is additionally attached to all λ nodes of its in-order
//!   column so its degree is ≥ λ (keeping the graph's edge connectivity at
//!   Θ(λ): ≥ λ since isolating any single node costs ≥ λ and every column
//!   boundary carries at least the λ matching edges; ≤ min degree = λ+O(1)).
//!
//! The overlay makes the *graph* diameter `O(log L)`, but contributes only
//! `O(L)` single edges of total capacity, so in any packing with more than
//! `O(log n)` trees, most trees must traverse the bulk and have diameter
//! `Ω(L) = Ω(n/λ)` — exactly the tension Theorem 13 formalizes. Experiment
//! E6 measures this.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Node};

/// Structural metadata of a generated GK13-style graph, for experiment
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gk13Layout {
    /// Number of thick-path columns `L`.
    pub columns: usize,
    /// Column width = target edge connectivity λ.
    pub lambda: usize,
    /// Number of binary-tree overlay nodes.
    pub tree_nodes: usize,
    /// Total nodes `n = L·λ + tree_nodes`.
    pub n: usize,
}

/// Build the GK13-style lower-bound graph. `columns ≥ 4`, `lambda ≥ 3`.
///
/// Node numbering: column nodes first (`c·λ + i` for column `c`, slot `i`),
/// then tree nodes in heap order (`root = Lλ`, children of heap index `h`
/// at `2h+1`, `2h+2`).
pub fn gk13_lower_bound(columns: usize, lambda: usize) -> (Graph, Gk13Layout) {
    assert!(columns >= 4, "need >= 4 columns");
    assert!(lambda >= 3, "need lambda >= 3");
    let leaves = columns.next_power_of_two();
    let tree_nodes = 2 * leaves - 1;
    let bulk = columns * lambda;
    let n = bulk + tree_nodes;
    let col = |c: usize, i: usize| (c * lambda + i) as Node;
    let tree = |h: usize| (bulk + h) as Node;

    let mut b = GraphBuilder::new(n);
    // Thick path bulk.
    for c in 0..columns {
        for i in 0..lambda {
            for j in (i + 1)..lambda {
                b.push_edge(col(c, i), col(c, j));
            }
        }
        if c + 1 < columns {
            for i in 0..lambda {
                b.push_edge(col(c, i), col(c + 1, i));
            }
        }
    }
    // Thin binary tree internal edges (heap-shaped, single edges).
    for h in 0..tree_nodes {
        for child in [2 * h + 1, 2 * h + 2] {
            if child < tree_nodes {
                b.push_edge(tree(h), tree(child));
            }
        }
    }
    // Attach every tree node to all λ nodes of a column: leaf `j` (heap
    // index `leaves-1+j`) to column `min(j·columns/leaves …)`, internal
    // nodes to the column of their in-order position, spreading attachments
    // so every tree node has degree ≥ λ.
    for h in 0..tree_nodes {
        let c = attachment_column(h, leaves, columns);
        for i in 0..lambda {
            b.push_edge(tree(h), col(c, i));
        }
    }
    let g = b.build().expect("gk13 family is simple");
    (
        g,
        Gk13Layout {
            columns,
            lambda,
            tree_nodes,
            n,
        },
    )
}

/// Column to which tree node `h` attaches: leaves map proportionally onto
/// columns; internal nodes attach to the column of their leftmost leaf
/// descendant (keeps attachments local to the subtree's span).
fn attachment_column(h: usize, leaves: usize, columns: usize) -> usize {
    // Find leftmost leaf of subtree rooted at h.
    let mut x = h;
    while 2 * x + 1 < 2 * leaves - 1 {
        x = 2 * x + 1;
    }
    let leaf_idx = x - (leaves - 1);
    (leaf_idx * columns) / leaves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::is_connected;
    use crate::algo::connectivity::edge_connectivity;
    use crate::algo::diameter::diameter_exact;

    #[test]
    fn layout_counts() {
        let (g, lay) = gk13_lower_bound(8, 4);
        assert_eq!(lay.n, g.n());
        assert_eq!(lay.tree_nodes, 15);
        assert_eq!(g.n(), 8 * 4 + 15);
        assert!(is_connected(&g));
    }

    #[test]
    fn edge_connectivity_is_at_least_lambda() {
        // The overlay attachments can only raise connectivity above the
        // column width λ; it stays Θ(λ) (capped by the min degree).
        let (g, lay) = gk13_lower_bound(8, 4);
        let lam = edge_connectivity(&g);
        assert!(lam >= lay.lambda, "λ = {lam} < column width {}", lay.lambda);
        assert!(lam <= g.min_degree());
        assert!(
            lam <= lay.lambda + 3,
            "λ = {lam} should stay Θ(column width)"
        );
    }

    #[test]
    fn min_degree_at_least_lambda() {
        let (g, lay) = gk13_lower_bound(16, 5);
        assert!(
            g.min_degree() >= lay.lambda,
            "min degree {} < λ {}",
            g.min_degree(),
            lay.lambda
        );
    }

    #[test]
    fn diameter_is_logarithmic_not_linear() {
        // 64 columns: bulk-only diameter would be ≥ 63; the overlay must
        // collapse it to O(log).
        let (g, _) = gk13_lower_bound(64, 4);
        let d = diameter_exact(&g).unwrap();
        assert!(d <= 20, "overlay should give small diameter, got {d}");
    }

    #[test]
    fn every_tree_node_attached() {
        let (g, lay) = gk13_lower_bound(8, 4);
        let bulk = lay.columns * lay.lambda;
        for h in 0..lay.tree_nodes {
            let v = (bulk + h) as Node;
            // λ attachment edges + up to 3 tree edges.
            assert!(g.degree(v) >= lay.lambda);
            assert!(g.degree(v) <= lay.lambda + 3);
        }
    }
}
