//! Random graph families (Erdős–Rényi, random regular), fully seeded.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: each of the `C(n,2)` pairs is an edge
/// independently with probability `p`. For `p ≥ c·ln n / n` the graph is
/// connected w.h.p. and λ concentrates at δ.
///
/// Sampling uses the skip-geometric method (`O(m)` expected work) rather
/// than testing all pairs, so large sparse graphs are cheap.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if p > 0.0 && n >= 2 {
        if p >= 1.0 {
            for u in 0..n as Node {
                for v in (u + 1)..n as Node {
                    b.push_edge(u, v);
                }
            }
        } else {
            // Iterate pair index space [0, C(n,2)) with geometric skips.
            let total = n * (n - 1) / 2;
            let log1mp = (1.0 - p).ln();
            let mut idx: usize = 0;
            loop {
                // Geometric(p) skip: floor(ln U / ln(1-p)).
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (u.ln() / log1mp).floor() as usize;
                idx = match idx.checked_add(skip) {
                    Some(i) => i,
                    None => break,
                };
                if idx >= total {
                    break;
                }
                let (a, bb) = pair_from_index(n, idx);
                b.push_edge(a, bb);
                idx += 1;
            }
        }
    }
    b.build().expect("gnp generates distinct pairs")
}

/// Map a linear index in `[0, C(n,2))` to the pair `(u, v)`, `u < v`, in
/// lexicographic order.
fn pair_from_index(n: usize, idx: usize) -> (Node, Node) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve by scan-free math:
    // offset(u) = u*(2n - u - 1)/2. Binary search u.
    let mut lo = 0usize;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let off = mid * (2 * n - mid - 1) / 2;
        if off <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let off = u * (2 * n - u - 1) / 2;
    let v = u + 1 + (idx - off);
    (u as Node, v as Node)
}

/// `G(n, p)` conditioned on connectivity: resamples (bumping the seed) until
/// connected. Panics after 64 attempts — p is below the connectivity
/// threshold, pick a larger p.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    for attempt in 0..64 {
        let g = gnp(n, p, seed.wrapping_add(attempt));
        if crate::algo::components::is_connected(&g) {
            return g;
        }
    }
    panic!("gnp_connected: no connected sample in 64 attempts (n={n}, p={p}); p too small");
}

/// Random `d`-regular graph via the configuration model with **swap
/// repair**: pair up `n·d` half-edges uniformly, then eliminate self-loops
/// and parallel edges by degree-preserving double-edge swaps against
/// uniformly random partners. Full restarts would need ~e^{d²/4} attempts;
/// repair converges in O(bad edges) expected swaps. `n·d` must be even.
///
/// Random regular graphs are expanders w.h.p., so δ = λ = d w.h.p. —
/// verified by the Dinic ground truth in tests.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "d must be < n");
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = n * d / 2;
    'attempt: for _ in 0..32 {
        // Random perfect matching of stubs: shuffle, pair consecutive.
        let mut stubs: Vec<Node> = (0..n as Node)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let canon = |a: Node, b: Node| if a < b { (a, b) } else { (b, a) };
        let mut edges: Vec<(Node, Node)> = (0..m)
            .map(|i| canon(stubs[2 * i], stubs[2 * i + 1]))
            .collect();
        // Classify: the first occurrence of each simple edge is good; loops
        // and repeats are bad and go on the repair stack.
        let mut good = std::collections::HashSet::with_capacity(m);
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            if a == b || !good.insert((a, b)) {
                bad.push(i);
            }
        }
        // Repair: swap a bad edge (a,b) with a random good edge (c,d) into
        // (a,c), (b,d) when that stays simple. Each success fixes one bad
        // edge without creating new ones.
        let mut budget = 200 * m + 10_000;
        while let Some(&i) = bad.last() {
            if budget == 0 {
                continue 'attempt;
            }
            budget -= 1;
            let (a, b) = edges[i];
            let j = rng.gen_range(0..m);
            if j == i || bad.contains(&j) {
                continue;
            }
            let (c, d) = edges[j];
            // Try both swap orientations.
            let candidates = [[canon2(a, c), canon2(b, d)], [canon2(a, d), canon2(b, c)]];
            let mut applied = false;
            for cand in candidates {
                let [e1, e2] = cand;
                let (e1, e2) = match (e1, e2) {
                    (Some(x), Some(y)) if x != y => (x, y),
                    _ => continue,
                };
                if good.contains(&e1) || good.contains(&e2) {
                    continue;
                }
                good.remove(&(c, d));
                good.insert(e1);
                good.insert(e2);
                edges[i] = e1;
                edges[j] = e2;
                bad.pop();
                applied = true;
                break;
            }
            let _ = applied;
        }
        return GraphBuilder::new(n)
            .edges(edges)
            .build()
            .expect("repaired configuration model output is simple");
    }
    panic!("random_regular: repair failed after 32 restarts (n={n}, d={d})");
}

/// Canonical edge unless it would be a self-loop.
#[inline]
fn canon2(a: Node, b: Node) -> Option<(Node, Node)> {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => Some((a, b)),
        std::cmp::Ordering::Equal => None,
        std::cmp::Ordering::Greater => Some((b, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::is_connected;
    use crate::algo::connectivity::edge_connectivity;

    #[test]
    fn gnp_dense_is_connected_with_expected_density() {
        let g = gnp(100, 0.2, 42);
        let expected = 0.2 * (100.0 * 99.0 / 2.0);
        let got = g.m() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "m = {got}, expected ≈ {expected}"
        );
        assert!(is_connected(&g));
    }

    #[test]
    fn gnp_zero_and_one() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn gnp_deterministic_in_seed() {
        let g1 = gnp(50, 0.1, 7);
        let g2 = gnp(50, 0.1, 7);
        let g3 = gnp(50, 0.1, 8);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn pair_index_roundtrip() {
        let n = 9;
        let mut idx = 0;
        for u in 0..n as Node {
            for v in (u + 1)..n as Node {
                assert_eq!(pair_from_index(n, idx), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let g = random_regular(60, 6, 3);
        assert_eq!(g.n(), 60);
        for v in 0..60 {
            assert_eq!(g.degree(v), 6);
        }
        assert!(is_connected(&g));
        // Random 6-regular graphs are 6-edge-connected w.h.p.
        assert_eq!(edge_connectivity(&g), 6);
    }

    #[test]
    fn gnp_connected_retries() {
        // p well above threshold: should succeed immediately.
        let g = gnp_connected(64, 0.15, 9);
        assert!(is_connected(&g));
    }
}
