//! Deterministic graph families with known δ, λ, and diameter.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Node};

/// Complete graph `K_n`: δ = λ = n−1, D = 1.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            b.push_edge(u, v);
        }
    }
    b.build().expect("complete graph is simple")
}

/// Path `P_n`: δ = λ = 1 (for n ≥ 2), D = n−1.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as Node {
        b.push_edge(v - 1, v);
    }
    b.build().expect("path is simple")
}

/// Cycle `C_n` (n ≥ 3): δ = λ = 2, D = ⌊n/2⌋.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut b = GraphBuilder::new(n);
    for v in 0..n as Node {
        b.push_edge(v, ((v as usize + 1) % n) as Node);
    }
    b.build().expect("cycle is simple")
}

/// Circulant graph: node `v` is adjacent to `v ± o (mod n)` for each offset
/// `o` in `offsets`. Offsets must be distinct, in `1..=n/2`.
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::new(n);
    for &o in offsets {
        assert!(
            o >= 1 && o <= n / 2,
            "offset {o} out of range 1..={}",
            n / 2
        );
        // For o == n/2 with even n each chord would be generated twice; the
        // loop below generates each undirected edge exactly once.
        let reach = if 2 * o == n { n / 2 } else { n };
        for v in 0..reach {
            b.push_edge(v as Node, ((v + o) % n) as Node);
        }
    }
    b.build()
        .expect("circulant with distinct offsets is simple")
}

/// Harary graph `H_{k,n}`: the minimal k-edge-connected graph on n nodes
/// (δ = λ = k exactly). We build the circulant variant with offsets
/// `1..=⌈k/2⌉`, which is k-edge-connected for even k; for odd k the extra
/// `n/2` offset (n must be even) adds the diameter chords.
///
/// This is the workhorse family for λ sweeps: λ is exactly `k` and the
/// diameter is ≈ `n / k`.
pub fn harary(k: usize, n: usize) -> Graph {
    assert!(k >= 2, "harary needs k >= 2");
    assert!(n > k, "harary needs n > k");
    if k.is_multiple_of(2) {
        let offsets: Vec<usize> = (1..=k / 2).collect();
        circulant(n, &offsets)
    } else {
        assert!(
            n.is_multiple_of(2),
            "odd-k Harary graph requires even n (got k={k}, n={n})"
        );
        let mut offsets: Vec<usize> = (1..=(k - 1) / 2).collect();
        offsets.push(n / 2);
        circulant(n, &offsets)
    }
}

/// Large-sparse preset: a bounded-degree, low-diameter circulant for
/// engine-scaling runs at `n` up to 10⁶ and beyond.
///
/// Offsets `{1, ⌈n^{1/3}⌉, ⌈n^{1/3}⌉²}` give three geometric "scales", so
/// degree is a constant **6** while the diameter is `O(n^{1/3})` — large
/// enough networks stay broadcastable in a few hundred rounds instead of
/// the `Θ(n/k)` a plain Harary ring would need. Circulants are
/// vertex-transitive, and connected vertex-transitive graphs have λ = δ
/// (Mader/Watkins), so **δ = λ = 6 by construction** — the generator
/// keeps the known-connectivity contract the experiment sweeps rely on.
pub fn large_sparse(n: usize) -> Graph {
    assert!(n >= 512, "large_sparse needs n >= 512 for distinct offsets");
    let c = (n as f64).cbrt().round() as usize;
    let offsets = [1, c, c * c];
    debug_assert!(offsets.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(c * c <= n / 2);
    circulant(n, &offsets)
}

/// 2-D torus `rows × cols` (both ≥ 3): δ = λ = 4, D = ⌊rows/2⌋ + ⌊cols/2⌋.
pub fn torus2d(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dims >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as Node;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.push_edge(id(r, c), id(r, (c + 1) % cols));
            b.push_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build().expect("torus with dims >= 3 is simple")
}

/// Hypercube `Q_d`: n = 2^d, δ = λ = d, D = d.
pub fn hypercube(d: usize) -> Graph {
    assert!((1..=30).contains(&d));
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.push_edge(v as Node, u as Node);
            }
        }
    }
    b.build().expect("hypercube is simple")
}

/// Chain of `cliques` cliques of size `clique_size`, consecutive cliques
/// joined by a `bridge_width`-edge matching: λ = `bridge_width`,
/// δ ≥ `clique_size − 1`, D ≈ 3·`cliques`.
///
/// This family has δ ≫ λ, separating the two terms of Theorem 1's
/// `O((n log n)/δ + (k log n)/λ)` bound.
pub fn clique_chain(cliques: usize, clique_size: usize, bridge_width: usize) -> Graph {
    assert!(cliques >= 1);
    assert!(clique_size >= 2);
    assert!(
        bridge_width >= 1 && bridge_width <= clique_size,
        "bridge width must be in 1..=clique_size"
    );
    let n = cliques * clique_size;
    let id = |c: usize, i: usize| (c * clique_size + i) as Node;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                b.push_edge(id(c, i), id(c, j));
            }
        }
        if c + 1 < cliques {
            for i in 0..bridge_width {
                b.push_edge(id(c, i), id(c + 1, i));
            }
        }
    }
    b.build().expect("clique chain is simple")
}

/// Ring of cliques: like [`clique_chain`] but the last clique also bridges
/// to the first, so every inter-clique cut must cross two bridges:
/// λ = min(2·bridge_width, clique_size − 1 + ...) — for
/// `2·bridge_width ≤ clique_size` the ring cut of `2·bridge_width` is the
/// minimum.
pub fn clique_ring(cliques: usize, clique_size: usize, bridge_width: usize) -> Graph {
    assert!(cliques >= 3, "ring needs >= 3 cliques");
    assert!(bridge_width >= 1 && bridge_width <= clique_size / 2);
    let n = cliques * clique_size;
    let id = |c: usize, i: usize| (c * clique_size + i) as Node;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                b.push_edge(id(c, i), id(c, j));
            }
        }
        let next = (c + 1) % cliques;
        // Attach forward bridges to the *second half* of the clique so the
        // backward bridges (ports 0..bridge_width) never collide.
        for i in 0..bridge_width {
            b.push_edge(id(c, clique_size - 1 - i), id(next, i));
        }
    }
    b.build().expect("clique ring is simple")
}

/// Complete bipartite graph `K_{a,b}` (`a ≤ b`): δ = λ = a, D = 2.
/// A useful extreme: maximal λ for its edge count, diameter 2.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a >= 1 && b >= 1);
    let mut bld = GraphBuilder::new(a + b);
    for i in 0..a as Node {
        for j in 0..b as Node {
            bld.push_edge(i, a as Node + j);
        }
    }
    bld.build().expect("complete bipartite is simple")
}

/// Two cliques of size `clique_size` joined by a path of `path_len` edges:
/// λ = 1, the motivating worst case where broadcast needs Ω(k) rounds.
pub fn barbell(clique_size: usize, path_len: usize) -> Graph {
    assert!(clique_size >= 2 && path_len >= 1);
    let n = 2 * clique_size + path_len.saturating_sub(1);
    let mut b = GraphBuilder::new(n);
    let left = |i: usize| i as Node;
    let right = |i: usize| (clique_size + i) as Node;
    for i in 0..clique_size {
        for j in (i + 1)..clique_size {
            b.push_edge(left(i), left(j));
            b.push_edge(right(i), right(j));
        }
    }
    // Path from node 0 of left clique to node 0 of right clique through
    // path_len - 1 fresh internal nodes.
    let mut prev = left(0);
    for p in 0..path_len.saturating_sub(1) {
        let mid = (2 * clique_size + p) as Node;
        b.push_edge(prev, mid);
        prev = mid;
    }
    b.push_edge(prev, right(0));
    b.build().expect("barbell is simple")
}

/// "Thick path": `columns` columns, each a clique of `lambda` nodes,
/// consecutive columns joined by a perfect matching of `lambda` edges.
/// δ = λ = `lambda` (endpoints columns realize δ; column boundaries realize
/// λ), D = Θ(columns) = Θ(n/λ).
///
/// This is the extremal family for Theorem 2's diameter bound: the diameter
/// of the *whole graph* is already Θ(n/λ), so the partition's subgraph
/// diameter O((n log n)/δ) is tight up to the log factor.
pub fn thick_path(columns: usize, lambda: usize) -> Graph {
    assert!(columns >= 2 && lambda >= 2);
    let id = |c: usize, i: usize| (c * lambda + i) as Node;
    let mut b = GraphBuilder::new(columns * lambda);
    for c in 0..columns {
        for i in 0..lambda {
            for j in (i + 1)..lambda {
                b.push_edge(id(c, i), id(c, j));
            }
        }
        if c + 1 < columns {
            for i in 0..lambda {
                b.push_edge(id(c, i), id(c + 1, i));
            }
        }
    }
    b.build().expect("thick path is simple")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::is_connected;
    use crate::algo::connectivity::edge_connectivity;
    use crate::algo::diameter::diameter_exact;

    #[test]
    fn complete_params() {
        let g = complete(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.min_degree(), 5);
        assert_eq!(diameter_exact(&g), Some(1));
    }

    #[test]
    fn harary_even_k_has_lambda_k() {
        let g = harary(4, 20);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(edge_connectivity(&g), 4);
    }

    #[test]
    fn large_sparse_has_bounded_degree_and_lambda_six() {
        let g = large_sparse(600);
        assert_eq!(g.min_degree(), 6);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(edge_connectivity(&g), 6, "vertex-transitive ⇒ λ = δ");
        // Scales to 10^6 nodes with constant degree (structure only here;
        // the broadcast smoke test lives in tier 2).
        let g = large_sparse(1_000_000);
        assert_eq!(g.n(), 1_000_000);
        assert_eq!(g.min_degree(), 6);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn harary_odd_k_has_lambda_k() {
        let g = harary(5, 20);
        assert_eq!(g.min_degree(), 5);
        assert_eq!(edge_connectivity(&g), 5);
    }

    #[test]
    fn torus_params() {
        let g = torus2d(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.min_degree(), 4);
        assert!(is_connected(&g));
        assert_eq!(edge_connectivity(&g), 4);
        assert_eq!(diameter_exact(&g), Some(2 + 2));
    }

    #[test]
    fn hypercube_params() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(diameter_exact(&g), Some(4));
        assert_eq!(edge_connectivity(&g), 4);
    }

    #[test]
    fn clique_chain_lambda_is_bridge_width() {
        let g = clique_chain(4, 6, 3);
        assert_eq!(g.n(), 24);
        assert!(g.min_degree() >= 5);
        assert_eq!(edge_connectivity(&g), 3);
    }

    #[test]
    fn clique_ring_lambda_is_twice_bridge() {
        let g = clique_ring(4, 6, 2);
        assert_eq!(edge_connectivity(&g), 4);
    }

    #[test]
    fn complete_bipartite_params() {
        let g = complete_bipartite(3, 5);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 15);
        assert_eq!(g.min_degree(), 3);
        assert_eq!(edge_connectivity(&g), 3);
        assert_eq!(diameter_exact(&g), Some(2));
    }

    #[test]
    fn barbell_lambda_one() {
        let g = barbell(5, 3);
        assert!(is_connected(&g));
        assert_eq!(edge_connectivity(&g), 1);
    }

    #[test]
    fn thick_path_params() {
        let g = thick_path(6, 4);
        assert_eq!(g.n(), 24);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(edge_connectivity(&g), 4);
        let d = diameter_exact(&g).unwrap();
        assert!(
            (5..=2 * 6).contains(&d),
            "thick path diameter ~ columns, got {d}"
        );
    }

    #[test]
    fn cycle_and_path() {
        assert_eq!(edge_connectivity(&cycle(8)), 2);
        assert_eq!(edge_connectivity(&path(8)), 1);
        assert_eq!(diameter_exact(&cycle(8)), Some(4));
        assert_eq!(diameter_exact(&path(8)), Some(7));
    }

    #[test]
    fn circulant_even_half_offset_no_dup() {
        // n even, offset exactly n/2 must not duplicate chords.
        let g = circulant(8, &[1, 4]);
        assert_eq!(g.m(), 8 + 4);
    }
}
