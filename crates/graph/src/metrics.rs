//! Graph-level metrics used across experiments: cut sizes, conductance,
//! and the paper's headline parameter summary (n, m, δ, λ, D).

use crate::algo::connectivity::edge_connectivity;
use crate::algo::diameter::diameter_exact;
use crate::graph::{Graph, Node};

/// Number of edges crossing the cut `(S, V∖S)` given a membership mask.
pub fn cut_size(g: &Graph, in_s: &[bool]) -> usize {
    assert_eq!(in_s.len(), g.n());
    g.edge_list()
        .filter(|&(_, u, v)| in_s[u as usize] != in_s[v as usize])
        .count()
}

/// Volume of `S`: sum of degrees of nodes in `S`.
pub fn volume(g: &Graph, in_s: &[bool]) -> usize {
    (0..g.n() as Node)
        .filter(|&v| in_s[v as usize])
        .map(|v| g.degree(v))
        .sum()
}

/// Conductance of the cut: `cut / min(vol(S), vol(V∖S))`.
/// Returns `None` if either side has zero volume.
pub fn conductance(g: &Graph, in_s: &[bool]) -> Option<f64> {
    let cut = cut_size(g, in_s);
    let vol_s = volume(g, in_s);
    let vol_rest = 2 * g.m() - vol_s;
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        None
    } else {
        Some(cut as f64 / denom as f64)
    }
}

/// The paper's parameter tuple for a graph, computed exactly.
/// Intended for experiment headers; costs `O(n·m)` (diameter) +
/// `O(n)` max-flows (λ), so use on verification-sized graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphParams {
    pub n: usize,
    pub m: usize,
    /// Minimum degree δ.
    pub delta: usize,
    /// Edge connectivity λ.
    pub lambda: usize,
    /// Diameter D (`None` when disconnected).
    pub diameter: Option<u32>,
}

impl GraphParams {
    pub fn measure(g: &Graph) -> Self {
        GraphParams {
            n: g.n(),
            m: g.m(),
            delta: g.min_degree(),
            lambda: edge_connectivity(g),
            diameter: diameter_exact(g),
        }
    }

    /// The paper's Observation 1 bound: `D = O(n/δ)`; returns the measured
    /// ratio `D · δ / n` (should be O(1) — in fact ≤ 3 by the proof).
    pub fn observation1_ratio(&self) -> Option<f64> {
        let d = self.diameter? as f64;
        if self.n == 0 {
            return None;
        }
        Some(d * self.delta as f64 / self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clique_chain, complete, cycle, harary};

    #[test]
    fn cut_and_volume_on_cycle() {
        let g = cycle(6);
        let in_s = vec![true, true, true, false, false, false];
        assert_eq!(cut_size(&g, &in_s), 2);
        assert_eq!(volume(&g, &in_s), 6);
        let phi = conductance(&g, &in_s).unwrap();
        assert!((phi - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_side_conductance_none() {
        let g = cycle(4);
        assert_eq!(conductance(&g, &[false; 4]), None);
    }

    #[test]
    fn params_of_harary() {
        let p = GraphParams::measure(&harary(4, 16));
        assert_eq!(p.n, 16);
        assert_eq!(p.delta, 4);
        assert_eq!(p.lambda, 4);
        assert!(p.diameter.unwrap() >= 2);
    }

    #[test]
    fn observation1_holds() {
        for g in [
            complete(10),
            cycle(12),
            harary(4, 24),
            clique_chain(3, 6, 2),
        ] {
            let p = GraphParams::measure(&g);
            let r = p.observation1_ratio().unwrap();
            assert!(r <= 3.0 + 1e-9, "Observation 1 ratio {r} > 3");
        }
    }
}
