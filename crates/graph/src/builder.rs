//! Validating construction of [`Graph`]s from edge lists.

use crate::graph::{Edge, Graph, Node};
use std::fmt;

/// Errors raised while building a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge references a node `>= n`.
    NodeOutOfRange { edge: (Node, Node), n: usize },
    /// A self-loop `{v, v}` was supplied. The paper's key lemma (Lemma 5)
    /// requires simple graphs, so we reject rather than silently drop.
    SelfLoop(Node),
    /// The same undirected edge was supplied twice.
    DuplicateEdge(Node, Node),
    /// More than `u32::MAX` edges.
    TooManyEdges,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NodeOutOfRange { edge: (u, v), n } => {
                write!(f, "edge ({u}, {v}) references a node >= n = {n}")
            }
            BuildError::SelfLoop(v) => write!(f, "self-loop at node {v} (graph must be simple)"),
            BuildError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge ({u}, {v}) (graph must be simple)")
            }
            BuildError::TooManyEdges => write!(f, "more than u32::MAX edges"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Graph`]. Collects undirected edges, validates simplicity,
/// and assembles the CSR arrays in two passes (count, fill) with no
/// intermediate per-node `Vec`s.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Node, Node)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Add one undirected edge `{u, v}`. Order of endpoints is irrelevant.
    pub fn edge(mut self, u: Node, v: Node) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Add many undirected edges.
    pub fn edges<I: IntoIterator<Item = (Node, Node)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// Add an edge in-place (non-consuming variant for loops).
    pub fn push_edge(&mut self, u: Node, v: Node) {
        self.edges.push((u, v));
    }

    /// Number of edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validate and build the CSR graph.
    ///
    /// Edge ids are assigned in sorted canonical order `(min, max)` so that
    /// the same edge set always yields the same ids regardless of insertion
    /// order — crucial for deterministic replay across the workspace.
    pub fn build(self) -> Result<Graph, BuildError> {
        let n = self.n;
        let mut canon: Vec<(Node, Node)> = Vec::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            if u as usize >= n || v as usize >= n {
                return Err(BuildError::NodeOutOfRange { edge: (u, v), n });
            }
            if u == v {
                return Err(BuildError::SelfLoop(u));
            }
            canon.push(if u < v { (u, v) } else { (v, u) });
        }
        canon.sort_unstable();
        if let Some(w) = canon.windows(2).find(|w| w[0] == w[1]) {
            return Err(BuildError::DuplicateEdge(w[0].0, w[0].1));
        }
        if canon.len() > u32::MAX as usize {
            return Err(BuildError::TooManyEdges);
        }

        let m = canon.len();
        // Pass 1: degree counts.
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &canon {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Pass 2: fill adjacency. Because `canon` is sorted by (u, v) and we
        // scan it once inserting both arc directions, each node's neighbor
        // list ends up... NOT sorted for the v-side inserts. We fill with a
        // cursor then sort each node's slice by neighbor id, carrying edge
        // ids along.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj_node = vec![0 as Node; 2 * m];
        let mut adj_edge = vec![0 as Edge; 2 * m];
        for (e, &(u, v)) in canon.iter().enumerate() {
            let cu = cursor[u as usize] as usize;
            adj_node[cu] = v;
            adj_edge[cu] = e as Edge;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adj_node[cv] = u;
            adj_edge[cv] = e as Edge;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency slice by neighbor id (stable co-sort of the two
        // parallel arrays via index permutation per node).
        let mut scratch: Vec<(Node, Edge)> = Vec::new();
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            if hi - lo <= 1 {
                continue;
            }
            scratch.clear();
            scratch.extend(
                adj_node[lo..hi]
                    .iter()
                    .copied()
                    .zip(adj_edge[lo..hi].iter().copied()),
            );
            scratch.sort_unstable();
            for (i, &(nb, e)) in scratch.iter().enumerate() {
                adj_node[lo + i] = nb;
                adj_edge[lo + i] = e;
            }
        }

        // Reverse-arc table: for arc position i representing (v → u) over
        // edge e, find the arc position of (u → v) over e. Since each edge
        // appears exactly once in each endpoint's slice, we can binary-search
        // u's slice for v.
        let mut reverse_arc = vec![0u32; 2 * m];
        for v in 0..n as Node {
            let lo = offsets[v as usize] as usize;
            let hi = offsets[v as usize + 1] as usize;
            for i in lo..hi {
                let u = adj_node[i];
                let ulo = offsets[u as usize] as usize;
                let uhi = offsets[u as usize + 1] as usize;
                let pos = adj_node[ulo..uhi]
                    .binary_search(&v)
                    .expect("reverse arc must exist");
                reverse_arc[i] = (ulo + pos) as u32;
            }
        }

        Ok(Graph {
            offsets,
            adj_node,
            adj_edge,
            endpoints: canon,
            reverse_arc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let err = GraphBuilder::new(3).edge(1, 1).build().unwrap_err();
        assert_eq!(err, BuildError::SelfLoop(1));
    }

    #[test]
    fn rejects_duplicate_in_any_orientation() {
        let err = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::DuplicateEdge(0, 1));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = GraphBuilder::new(2).edge(0, 5).build().unwrap_err();
        assert!(matches!(err, BuildError::NodeOutOfRange { .. }));
    }

    #[test]
    fn edge_ids_are_insertion_order_independent() {
        let g1 = GraphBuilder::new(4)
            .edges([(0, 1), (2, 3), (1, 2)])
            .build()
            .unwrap();
        let g2 = GraphBuilder::new(4)
            .edges([(3, 2), (1, 0), (2, 1)])
            .build()
            .unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = GraphBuilder::new(5).edge(0, 1).build().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
    }
}
