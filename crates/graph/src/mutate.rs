//! Incremental topology mutation: batch edge insertion/removal with
//! in-place CSR repair.
//!
//! The churn subsystem (DESIGN.md §3) applies topology changes at phase
//! boundaries. Rebuilding the graph through [`crate::GraphBuilder`] costs
//! a full `O(m log m)` canonical sort, per-node adjacency re-sorts, and
//! `O(m log Δ)` reverse-arc binary searches. [`Graph::apply_batch`]
//! instead *splices* a sorted batch into the existing sorted CSR arrays:
//!
//! * endpoints merge is a single linear pass over `old ∪ add \ remove`;
//! * adjacency slices are respliced per node with a two-pointer merge
//!   (old slices are already sorted, removed entries are dropped while
//!   copying);
//! * the reverse-arc involution is rebuilt by a counting pass (pair the
//!   two arc positions of every edge), no binary search;
//! * all target arrays live in a ping-ponging [`RepairScratch`], so a
//!   steady stream of batches touches the allocator only while growing
//!   to its high-water mark.
//!
//! **Edge-id discipline.** [`crate::GraphBuilder::build`] assigns edge
//! ids by position in the sorted canonical edge list, which is what makes
//! runs replayable across the workspace. `apply_batch` preserves exactly
//! that rule — the repaired graph is `==` (structurally identical,
//! including edge ids and arc positions) to a fresh build of the same
//! edge set. That global renumbering is what lets mutate-then-run stay
//! bit-identical with rebuild-then-run (`proptest_churn`), at the price
//! of an `O(n + m)` pass no repair scheme respecting the id discipline
//! can avoid; the win over rebuild is dropping every sort and search.

use crate::graph::{Edge, Graph, Node};
use std::fmt;

/// Sentinel in the old→new edge-id map for "removed by this batch".
const REMOVED: u32 = u32::MAX;

/// Errors raised while applying a mutation batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// An edge references a node `>= n`.
    NodeOutOfRange { edge: (Node, Node), n: usize },
    /// A self-loop `{v, v}` was supplied (graphs stay simple).
    SelfLoop(Node),
    /// The same edge appears twice in one batch (in either list).
    DuplicateInBatch(Node, Node),
    /// The same edge appears in both the add and the remove list; callers
    /// must net out cancelling mutations before applying.
    AddRemoveConflict(Node, Node),
    /// An added edge already exists.
    EdgeExists(Node, Node),
    /// A removed edge does not exist.
    EdgeMissing(Node, Node),
    /// More than `u32::MAX` edges after the batch.
    TooManyEdges,
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::NodeOutOfRange { edge: (u, v), n } => {
                write!(f, "edge ({u}, {v}) references a node >= n = {n}")
            }
            MutationError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            MutationError::DuplicateInBatch(u, v) => {
                write!(f, "edge ({u}, {v}) appears twice in the batch")
            }
            MutationError::AddRemoveConflict(u, v) => {
                write!(f, "edge ({u}, {v}) both added and removed in one batch")
            }
            MutationError::EdgeExists(u, v) => write!(f, "added edge ({u}, {v}) already exists"),
            MutationError::EdgeMissing(u, v) => write!(f, "removed edge ({u}, {v}) does not exist"),
            MutationError::TooManyEdges => write!(f, "more than u32::MAX edges"),
        }
    }
}

impl std::error::Error for MutationError {}

/// Reusable working storage for [`Graph::apply_batch`]. The repaired CSR
/// arrays are built here and swapped with the graph's, so the arrays the
/// graph held before become the next batch's scratch (ping-pong); after
/// the first few batches a steady churn stream allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct RepairScratch {
    offsets: Vec<u32>,
    adj_node: Vec<Node>,
    adj_edge: Vec<Edge>,
    endpoints: Vec<(Node, Node)>,
    reverse_arc: Vec<u32>,
    /// Old edge id → new edge id (or [`REMOVED`]).
    old_to_new: Vec<u32>,
    /// First arc position seen per (new) edge id, for reverse-arc pairing.
    first_pos: Vec<u32>,
    /// Canonicalized, sorted copies of the caller's batches.
    add: Vec<(Node, Node)>,
    remove: Vec<(Node, Node)>,
    /// Added arcs `(src, dst, new edge id)`, sorted by `(src, dst)`.
    add_arcs: Vec<(Node, Node, Edge)>,
    /// Per-node degree delta; zeroed outside `apply_batch` (re-zeroed
    /// sparsely on exit, so it never costs an O(n) fill per batch).
    delta: Vec<i32>,
}

impl RepairScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// What one [`Graph::apply_batch`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    /// Edges inserted by the batch.
    pub edges_added: usize,
    /// Edges deleted by the batch.
    pub edges_removed: usize,
    /// Smallest edge id (new numbering) at which ids diverge from the
    /// pre-batch numbering; `m` (the new edge count) when the batch was
    /// empty. Everything below this id kept its identity.
    pub first_renumbered: usize,
    /// Nodes whose degree changed (their adjacency slices moved).
    pub touched_nodes: usize,
    /// Edge count after the batch.
    pub m: usize,
}

impl Graph {
    /// Apply one batch of edge insertions and removals in place,
    /// preserving the builder's sorted-canonical edge-id discipline. On
    /// success the graph equals a fresh [`crate::GraphBuilder`] build of
    /// the post-batch edge set (same ids, same arc layout); on error the
    /// graph is untouched.
    ///
    /// Cost: `O(n + m + |batch| log |batch|)` with no global sort and no
    /// binary searches; all working storage comes from `scratch`.
    pub fn apply_batch(
        &mut self,
        add: &[(Node, Node)],
        remove: &[(Node, Node)],
        scratch: &mut RepairScratch,
    ) -> Result<RepairReport, MutationError> {
        let n = self.n();
        let m = self.m();
        if add.is_empty() && remove.is_empty() {
            return Ok(RepairReport {
                edges_added: 0,
                edges_removed: 0,
                first_renumbered: m,
                touched_nodes: 0,
                m,
            });
        }

        // --- Canonicalize, sort, validate both batches.
        let canon =
            |list: &[(Node, Node)], out: &mut Vec<(Node, Node)>| -> Result<(), MutationError> {
                out.clear();
                for &(u, v) in list {
                    if u as usize >= n || v as usize >= n {
                        return Err(MutationError::NodeOutOfRange { edge: (u, v), n });
                    }
                    if u == v {
                        return Err(MutationError::SelfLoop(u));
                    }
                    out.push(if u < v { (u, v) } else { (v, u) });
                }
                out.sort_unstable();
                if let Some(w) = out.windows(2).find(|w| w[0] == w[1]) {
                    return Err(MutationError::DuplicateInBatch(w[0].0, w[0].1));
                }
                Ok(())
            };
        let s = scratch;
        let (adds, removes) = {
            let mut a = std::mem::take(&mut s.add);
            let mut r = std::mem::take(&mut s.remove);
            let res = canon(add, &mut a).and_then(|()| canon(remove, &mut r));
            s.add = a;
            s.remove = r;
            res?;
            (s.add.len(), s.remove.len())
        };
        {
            // Both sorted: one merge pass finds any common pair.
            let (mut i, mut j) = (0, 0);
            while i < adds && j < removes {
                match s.add[i].cmp(&s.remove[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let (u, v) = s.add[i];
                        return Err(MutationError::AddRemoveConflict(u, v));
                    }
                }
            }
        }
        for &(u, v) in &s.add {
            if self.has_edge(u, v) {
                return Err(MutationError::EdgeExists(u, v));
            }
        }
        for &(u, v) in &s.remove {
            if !self.has_edge(u, v) {
                return Err(MutationError::EdgeMissing(u, v));
            }
        }
        let new_m = m + adds - removes;
        if new_m > u32::MAX as usize {
            return Err(MutationError::TooManyEdges);
        }

        // --- Merge endpoints (all sorted) into the new canonical list,
        // recording the old→new edge-id renumbering and tagging each add
        // with its new id.
        s.endpoints.clear();
        s.endpoints.reserve(new_m);
        s.old_to_new.clear();
        s.old_to_new.resize(m, REMOVED);
        s.add_arcs.clear();
        s.add_arcs.reserve(2 * adds);
        let mut first_renumbered = new_m;
        let (mut oi, mut ai, mut ri) = (0usize, 0usize, 0usize);
        while oi < m || ai < adds {
            let take_add = ai < adds && (oi >= m || s.add[ai] < self.endpoints[oi]);
            if take_add {
                let id = s.endpoints.len() as Edge;
                first_renumbered = first_renumbered.min(id as usize);
                let (u, v) = s.add[ai];
                s.add_arcs.push((u, v, id));
                s.add_arcs.push((v, u, id));
                s.endpoints.push((u, v));
                ai += 1;
            } else if ri < removes && s.remove[ri] == self.endpoints[oi] {
                first_renumbered = first_renumbered.min(s.endpoints.len());
                ri += 1;
                oi += 1;
            } else {
                s.old_to_new[oi] = s.endpoints.len() as u32;
                s.endpoints.push(self.endpoints[oi]);
                oi += 1;
            }
        }
        debug_assert_eq!(s.endpoints.len(), new_m);
        s.add_arcs.sort_unstable();

        // --- New offsets from sparse degree deltas (delta is all-zero
        // between batches; only touched entries are written and re-zeroed).
        if s.delta.len() < n {
            s.delta.resize(n, 0);
        }
        for &(u, v) in &s.add {
            s.delta[u as usize] += 1;
            s.delta[v as usize] += 1;
        }
        for &(u, v) in &s.remove {
            s.delta[u as usize] -= 1;
            s.delta[v as usize] -= 1;
        }
        let mut touched_nodes = 0usize;
        s.offsets.clear();
        s.offsets.reserve(n + 1);
        s.offsets.push(0);
        let mut running = 0u32;
        for v in 0..n {
            let d = s.delta[v];
            if d != 0 {
                touched_nodes += 1;
            }
            let old_deg = self.offsets[v + 1] - self.offsets[v];
            running += (old_deg as i64 + d as i64) as u32;
            s.offsets.push(running);
        }
        debug_assert_eq!(running as usize, 2 * new_m);
        for &(u, v) in s.add.iter().chain(s.remove.iter()) {
            s.delta[u as usize] = 0;
            s.delta[v as usize] = 0;
        }

        // --- Resplice adjacency: per node, merge the surviving old slice
        // (renumbered) with this node's added arcs; both sides sorted by
        // neighbor, so one two-pointer pass keeps the slice sorted.
        let new_arcs = 2 * new_m;
        s.adj_node.clear();
        s.adj_node.resize(new_arcs, 0);
        s.adj_edge.clear();
        s.adj_edge.resize(new_arcs, 0);
        let mut aa = 0usize;
        for v in 0..n as Node {
            let old_lo = self.offsets[v as usize] as usize;
            let old_hi = self.offsets[v as usize + 1] as usize;
            let mut w = s.offsets[v as usize] as usize;
            let mut i = old_lo;
            loop {
                while i < old_hi && s.old_to_new[self.adj_edge[i] as usize] == REMOVED {
                    i += 1;
                }
                let add_pending = aa < s.add_arcs.len() && s.add_arcs[aa].0 == v;
                if i >= old_hi && !add_pending {
                    break;
                }
                let take_add = add_pending && (i >= old_hi || s.add_arcs[aa].1 < self.adj_node[i]);
                if take_add {
                    s.adj_node[w] = s.add_arcs[aa].1;
                    s.adj_edge[w] = s.add_arcs[aa].2;
                    aa += 1;
                } else {
                    s.adj_node[w] = self.adj_node[i];
                    s.adj_edge[w] = s.old_to_new[self.adj_edge[i] as usize];
                    i += 1;
                }
                w += 1;
            }
            debug_assert_eq!(w, s.offsets[v as usize + 1] as usize);
        }
        debug_assert_eq!(aa, s.add_arcs.len());

        // --- Reverse arcs by pairing the two positions of every edge in
        // one linear pass (no binary search).
        s.reverse_arc.clear();
        s.reverse_arc.resize(new_arcs, 0);
        s.first_pos.clear();
        s.first_pos.resize(new_m, u32::MAX);
        for i in 0..new_arcs {
            let e = s.adj_edge[i] as usize;
            let fp = s.first_pos[e];
            if fp == u32::MAX {
                s.first_pos[e] = i as u32;
            } else {
                s.reverse_arc[i] = fp;
                s.reverse_arc[fp as usize] = i as u32;
            }
        }

        // --- Commit: swap the repaired arrays in; the graph's previous
        // arrays become next batch's scratch.
        std::mem::swap(&mut self.offsets, &mut s.offsets);
        std::mem::swap(&mut self.adj_node, &mut s.adj_node);
        std::mem::swap(&mut self.adj_edge, &mut s.adj_edge);
        std::mem::swap(&mut self.endpoints, &mut s.endpoints);
        std::mem::swap(&mut self.reverse_arc, &mut s.reverse_arc);

        Ok(RepairReport {
            edges_added: adds,
            edges_removed: removes,
            first_renumbered,
            touched_nodes,
            m: new_m,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{harary, path};

    /// The oracle: the repaired graph must equal a fresh build of the
    /// same edge set (ids, arc layout, everything `PartialEq` sees).
    fn rebuild(n: usize, g: &Graph) -> Graph {
        GraphBuilder::new(n)
            .edges(g.edge_list().map(|(_, u, v)| (u, v)))
            .build()
            .unwrap()
    }

    #[test]
    fn add_and_remove_match_rebuild() {
        let mut g = path(6); // 0-1-2-3-4-5
        let mut s = RepairScratch::new();
        let rep = g.apply_batch(&[(0, 3), (5, 2)], &[(1, 2)], &mut s).unwrap();
        assert_eq!(rep.edges_added, 2);
        assert_eq!(rep.edges_removed, 1);
        assert_eq!(rep.m, 6);
        assert_eq!(g, rebuild(6, &g));
        assert!(g.has_edge(0, 3) && g.has_edge(2, 5) && !g.has_edge(1, 2));
    }

    #[test]
    fn repeated_batches_stay_canonical() {
        let mut g = harary(4, 24);
        let mut s = RepairScratch::new();
        // Deterministic churn: remove the lowest edge, add a chord, undo.
        for round in 0..12u32 {
            let (_, u, v) = g.edge_list().next().unwrap();
            let a = (round % 24, (round + 7) % 24);
            let add = if g.has_edge(a.0, a.1) || a.0 == a.1 {
                vec![]
            } else {
                vec![a]
            };
            g.apply_batch(&add, &[(u, v)], &mut s).unwrap();
            assert_eq!(g, rebuild(24, &g), "round {round}");
            for arc in 0..g.num_arcs() {
                assert_eq!(g.reverse_arc(g.reverse_arc(arc)), arc);
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut g = path(4);
        let before = g.clone();
        let rep = g.apply_batch(&[], &[], &mut RepairScratch::new()).unwrap();
        assert_eq!(rep.first_renumbered, g.m());
        assert_eq!(rep.touched_nodes, 0);
        assert_eq!(g, before);
    }

    #[test]
    fn errors_leave_graph_untouched() {
        let mut g = path(4);
        let before = g.clone();
        let mut s = RepairScratch::new();
        assert_eq!(
            g.apply_batch(&[(0, 1)], &[], &mut s),
            Err(MutationError::EdgeExists(0, 1))
        );
        assert_eq!(
            g.apply_batch(&[], &[(0, 2)], &mut s),
            Err(MutationError::EdgeMissing(0, 2))
        );
        assert_eq!(
            g.apply_batch(&[(1, 1)], &[], &mut s),
            Err(MutationError::SelfLoop(1))
        );
        assert_eq!(
            g.apply_batch(&[(0, 9)], &[], &mut s),
            Err(MutationError::NodeOutOfRange { edge: (0, 9), n: 4 })
        );
        assert_eq!(
            g.apply_batch(&[(0, 2), (2, 0)], &[], &mut s),
            Err(MutationError::DuplicateInBatch(0, 2))
        );
        assert_eq!(
            g.apply_batch(&[(0, 2)], &[(0, 2)], &mut s),
            Err(MutationError::AddRemoveConflict(0, 2))
        );
        assert_eq!(g, before);
    }

    #[test]
    fn can_remove_every_edge_and_refill() {
        let mut g = path(5);
        let mut s = RepairScratch::new();
        let all: Vec<_> = g.edge_list().map(|(_, u, v)| (u, v)).collect();
        g.apply_batch(&[], &all, &mut s).unwrap();
        assert_eq!(g.m(), 0);
        assert_eq!(g, rebuild(5, &g));
        g.apply_batch(&all, &[], &mut s).unwrap();
        assert_eq!(g, path(5));
    }

    #[test]
    fn first_renumbered_is_tight() {
        let mut g = GraphBuilder::new(6)
            .edges([(0, 1), (2, 3), (4, 5)])
            .build()
            .unwrap();
        let mut s = RepairScratch::new();
        // (3,4) sorts after (2,3): ids 0 and 1 keep their identity.
        let rep = g.apply_batch(&[(3, 4)], &[], &mut s).unwrap();
        assert_eq!(rep.first_renumbered, 2);
        assert_eq!(g.endpoints(0), (0, 1));
        assert_eq!(g.endpoints(1), (2, 3));
        assert_eq!(g.endpoints(2), (3, 4));
    }
}
