//! Network-resilience monitoring: disseminate a cut sparsifier (Theorem 7)
//! so every node can locally audit the capacity of *any* cut — e.g. "how
//! much bandwidth survives if this rack row is isolated?" — within (1±ε).
//!
//! ```text
//! cargo run --release --example cut_monitoring
//! ```

use fast_broadcast::graph::generators::harary;
use fast_broadcast::graph::WeightedGraph;
use fast_broadcast::sparsify::cuts::theorem7_all_cuts;
use fast_broadcast::sparsify::koutis_xu::koutis_xu_unit;

fn main() {
    let lambda = 24;
    let n = 120;
    let g = harary(lambda, n);
    println!("monitored fabric: n = {n}, λ = {lambda}, m = {}\n", g.m());

    // Full pipeline: sparsify + broadcast + audit.
    for eps in [0.6, 0.4] {
        let out =
            theorem7_all_cuts(&WeightedGraph::unit(g.clone()), eps, lambda, 77).expect("theorem 7");
        println!(
            "ε = {eps}: sparsifier {} / {} edges, broadcast+construction = {} rounds",
            out.sparsifier_edges,
            g.m(),
            out.total_rounds
        );
        println!(
            "  audited {} cuts: worst error {:.3}, mean {:.4}, min-cut {} → {}",
            out.quality.num_cuts,
            out.quality.max_rel_error,
            out.quality.mean_rel_error,
            out.quality.min_cut_g,
            out.quality.min_cut_h
        );
    }

    // What a node does after receiving the sparsifier: query arbitrary cuts.
    println!("\nlocal what-if queries against the ε = 0.4 sparsifier:");
    let sp = koutis_xu_unit(&g, 0.4, 77);
    let wg = WeightedGraph::unit(g.clone());
    let scenarios: Vec<(&str, Vec<bool>)> = vec![
        ("isolate first 12 nodes", (0..n).map(|v| v < 12).collect()),
        ("split fabric in half", (0..n).map(|v| v < n / 2).collect()),
        (
            "isolate every 5th node",
            (0..n).map(|v| v % 5 == 0).collect(),
        ),
    ];
    for (what, cut) in &scenarios {
        let true_w = wg.cut_weight(cut);
        let est = sp.cut_weight(cut);
        println!(
            "  {what:<26} true capacity = {true_w:>6.0}, estimated = {est:>8.1}, error = {:+.2}%",
            100.0 * (est - true_w) / true_w
        );
    }
}
