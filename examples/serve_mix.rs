//! Broadcast-as-a-service in one process: three tenants share a
//! [`PoolServer`] — a warm [`SessionPool`] keyed by graph fingerprint
//! plus a bounded job queue whose drain batches compatible jobs onto
//! wide lane sweeps. Every job's result is bit-identical to running it
//! alone on a fresh session (checked live at the end), the pool reuses
//! warm engine state across the whole run, and each tenant gets an
//! aggregate congestion/bit meter for its own jobs only.
//!
//! ```text
//! cargo run --release --example serve_mix
//! ```

use fast_broadcast::graph::generators::{harary, torus2d};
use fast_broadcast::sim::fault::FaultPlan;
use fast_broadcast::sim::rng::mix64;
use fast_broadcast::sim::{run_job_isolated, EngineConfig, Job, JobSpec, JobStatus, PoolServer};

fn main() {
    let config = EngineConfig::serial();
    let mut server = PoolServer::new(config.clone(), 16);

    // Two customer topologies, registered once; jobs reference them by
    // fingerprint key.
    let mesh = harary(6, 384);
    let grid = torus2d(12, 16);
    let mesh_key = server.register_graph(mesh.clone());
    let grid_key = server.register_graph(grid.clone());
    println!(
        "registered: mesh n={} (key {:#018x}), grid n={} (key {:#018x})\n",
        mesh.n(),
        mesh_key.fingerprint(),
        grid.n(),
        grid_key.fingerprint()
    );

    // A mixed multi-tenant stream: tenant 0 floods leader elections on
    // the mesh, tenant 1 spreads rumors on both graphs, tenant 2 runs
    // seeded gossip (dense — the batching policy evicts it to a
    // sequential session) and a few faulted rumor runs.
    let mut jobs = Vec::new();
    for j in 0..12u64 {
        jobs.push(Job {
            graph: mesh_key,
            protocol: JobSpec::FloodMax,
            seed: mix64(j),
            faults: None,
            tenant: 0,
        });
        jobs.push(Job {
            graph: if j % 2 == 0 { mesh_key } else { grid_key },
            protocol: JobSpec::Rumor {
                source: (mix64(0xA0 ^ j) % 192) as u32,
            },
            seed: mix64(0xB0 ^ j),
            faults: None,
            tenant: 1,
        });
        if j % 3 == 0 {
            jobs.push(Job {
                graph: grid_key,
                protocol: JobSpec::Gossip { rounds: 6 + j % 3 },
                seed: mix64(0xC0 ^ j),
                faults: None,
                tenant: 2,
            });
            jobs.push(Job {
                graph: mesh_key,
                protocol: JobSpec::Rumor { source: 0 },
                seed: mix64(0xD0 ^ j),
                faults: Some(FaultPlan::new(3, mix64(0xFA ^ j))),
                tenant: 2,
            });
        }
    }

    // Submit through the bounded queue; `submit` drains the backlog for
    // us whenever the queue fills (backpressure), then one final drain.
    let mut done = Vec::new();
    for job in &jobs {
        server.submit(job.clone(), &mut done).expect("registered");
    }
    server.drain(&mut done);
    done.sort_by_key(|o| o.id);

    let batched = done.iter().filter(|o| o.batched).count();
    println!(
        "served {} jobs: {} wide-batched, {} sequential, pool {} warm hits / {} cold builds\n",
        done.len(),
        batched,
        done.len() - batched,
        server.pool().hits(),
        server.pool().misses()
    );

    println!("| tenant | jobs | rounds | messages | dropped | max edge congestion |");
    println!("|---|---|---|---|---|---|");
    for (tenant, m) in server.meters() {
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            tenant, m.jobs, m.rounds, m.messages, m.dropped, m.max_edge_congestion
        );
    }

    // The serving contract, demonstrated on the live results: every
    // pooled output is bit-identical to the job alone on a fresh session.
    let graph_of = |job: &Job| if job.graph == mesh_key { &mesh } else { &grid };
    for (job, out) in jobs.iter().zip(&done) {
        assert_eq!(out.status, JobStatus::Done);
        let (outputs, stats) =
            run_job_isolated(graph_of(job), &job.protocol, job.seed, job.faults, &config)
                .expect("isolated run terminates");
        assert_eq!(out.outputs, outputs);
        assert_eq!(out.stats, stats);
    }
    println!(
        "\nall {} results bit-identical to isolated fresh-session runs",
        done.len()
    );
}
