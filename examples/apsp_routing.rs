//! Sensor-mesh routing tables: build (3,2)-approximate all-pairs distance
//! estimates (Theorem 4) and O(log n/log log n)-approximate weighted
//! routes (Corollary 1) on a redundant mesh, then audit the quality
//! against exact APSP.
//!
//! ```text
//! cargo run --release --example apsp_routing
//! ```

use fast_broadcast::apsp::baswana_sen::corollary1_k;
use fast_broadcast::apsp::unweighted_apsp_approx;
use fast_broadcast::apsp::weighted::corollary1_apsp;
use fast_broadcast::graph::algo::apsp::{
    apsp_unweighted, apsp_weighted, measure_stretch_unweighted, measure_stretch_weighted,
};
use fast_broadcast::graph::generators::harary;
use fast_broadcast::graph::WeightedGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let lambda = 12;
    let n = 96;
    let g = harary(lambda, n);
    println!("sensor mesh: n = {n}, λ = {lambda}, m = {}\n", g.m());

    // --- Unweighted hop-count tables (Theorem 4).
    println!("== hop-count routing tables: (3,2)-approximate APSP (Theorem 4)");
    let out = unweighted_apsp_approx(&g, lambda, 42).expect("theorem 4");
    let exact = apsp_unweighted(&g);
    let alpha = measure_stretch_unweighted(&exact, &out.estimate, 2).expect("estimates dominate");
    println!(
        "  {} clusters, {} total rounds, verified worst stretch α = {alpha:.3} (bound: 3)",
        out.cluster_graph.centers.len(),
        out.total_rounds
    );
    // Show a few sample routes.
    for (u, v) in [(0usize, n / 2), (3, n - 5), (n / 4, 3 * n / 4)] {
        println!(
            "  route {u:>3} → {v:>3}: true = {:>2} hops, estimate = {:>2}",
            exact[u][v], out.estimate[u][v]
        );
    }

    // --- Weighted latency tables (Corollary 1).
    println!("\n== latency routing tables: O(log n/log log n)-approx weighted APSP (Corollary 1)");
    let mut rng = SmallRng::seed_from_u64(5);
    let weights: Vec<f64> = (0..g.m()).map(|_| rng.gen_range(1..50) as f64).collect();
    let wg = WeightedGraph::new(g, weights);
    let k = corollary1_k(n);
    let wout = corollary1_apsp(&wg, lambda, 42).expect("corollary 1");
    let wexact = apsp_weighted(&wg);
    let stretch = measure_stretch_weighted(&wexact, &wout.estimate).expect("dominating");
    println!(
        "  k = {k} (stretch budget {}), spanner = {} of {} edges, {} rounds, verified stretch = {stretch:.3}",
        2 * k - 1,
        wout.spanner_edges,
        wg.m(),
        wout.total_rounds
    );
    for (u, v) in [(0usize, n / 2), (7, n - 9)] {
        println!(
            "  route {u:>3} → {v:>3}: true latency = {:>5.0}, estimate = {:>5.0}",
            wexact[u][v], wout.estimate[u][v]
        );
    }
}
