//! Wide-batch soak: many independent instances through one sweep.
//!
//! Two acts, both on [`fast_broadcast::sim::WideSession`] — the
//! bit-parallel round kernel that runs up to 64 instances of one
//! protocol on one graph in a single interleaved arc sweep:
//!
//! 1. **A nemesis per lane.** 24 flood-max elections run at once, each
//!    lane under its own adversarial fault plan derived from one base
//!    seed via [`FaultPlan::with_lane_seed`]. A few lanes are
//!    spot-verified bit-identical against plain sequential runs — the
//!    same oracle discipline `proptest_wide` enforces exhaustively.
//! 2. **A seed sweep per round.** Theorem 1's partition broadcast runs
//!    12 candidate partition seeds concurrently through
//!    `partition_broadcast_wide` on a borderline two-class split: the
//!    lanes whose partition fails Theorem 2's spanning event drop out
//!    and the rest finish — one sweep replaces the retry loop's
//!    one-seed-at-a-time search.
//!
//! ```text
//! cargo run --release --example wide_soak
//! ```

use fast_broadcast::core::broadcast::{
    partition_broadcast_wide, BroadcastConfig, BroadcastError, BroadcastInput,
};
use fast_broadcast::core::leader::FloodMax;
use fast_broadcast::core::partition::PartitionParams;
use fast_broadcast::graph::generators::{clique_chain, harary};
use fast_broadcast::sim::{EngineConfig, FaultPlan, LaneSpec, Session, WideSession};

fn main() {
    // --- Act 1: one sweep, 24 nemeses. -------------------------------
    let n = 192;
    let g = harary(8, n);
    let w = 24usize;
    let base_faults = FaultPlan::new(3, 0xFA17);
    let lanes: Vec<LaneSpec> = LaneSpec::batch(0x50AC, w)
        .into_iter()
        .enumerate()
        .map(|(l, spec)| spec.with_faults(base_faults.with_lane_seed(l)))
        .collect();
    println!(
        "act 1: {w} flood-max elections on harary(8, {n}), each under its own \
         3-edges-per-round nemesis\n"
    );

    let mut wide = WideSession::new(&g);
    let cfg = EngineConfig::serial();
    let out = wide
        .run(&lanes, |v, _, _| FloodMax::new(v), cfg.clone())
        .unwrap();

    let mut unanimous = 0usize;
    for l in 0..w {
        let outputs = out.outputs(l);
        let leader = outputs[0].leader;
        let agree = outputs.iter().filter(|o| o.leader == leader).count();
        if agree == outputs.len() {
            unanimous += 1;
        }
        let st = out.stats(l);
        if l < 6 {
            println!(
                "  lane {l:2}: {agree:3}/{} agree on node {leader:3}, \
                 {} rounds, {} messages dropped by the nemesis",
                outputs.len(),
                st.rounds,
                st.dropped_messages
            );
        }
    }
    println!("  ...\n  {unanimous}/{w} lanes elected unanimously despite the faults\n");

    // Spot-verify: a wide lane is bit-identical to a sequential run
    // under the same seed and the same nemesis.
    for l in [0usize, 7, 23] {
        let seq_cfg = EngineConfig::with_seed(lanes[l].seed).with_faults(lanes[l].faults.unwrap());
        let mut sess = Session::new(&g);
        let seq = sess.run(|v, _| FloodMax::new(v), seq_cfg).unwrap();
        assert_eq!(out.stats(l), seq.stats, "lane {l} stats diverged");
        assert_eq!(out.outputs(l), seq.outputs(), "lane {l} outputs diverged");
        println!("  lane {l:2} spot-verified bit-identical to its sequential run");
    }
    drop(out);

    // --- Act 2: Theorem 1 seed sweep, one sweep per phase. -----------
    let g2 = clique_chain(3, 12, 6);
    let input = BroadcastInput::random_spread(&g2, 40, 4);
    let params = PartitionParams::explicit(2);
    let cfg2 = BroadcastConfig::with_seed(0); // per-lane seeds supersede
    let seeds: Vec<u64> = (0..12u64)
        .map(|a| 77u64.wrapping_add(a * 0x9E37_79B9))
        .collect();
    println!(
        "\nact 2: partition broadcast on clique_chain(3, 12, 6), {} candidate \
         partition seeds in one wide sweep (2 classes, borderline)\n",
        seeds.len()
    );

    let results = partition_broadcast_wide(&g2, &input, params, &cfg2, &seeds).unwrap();
    let mut best: Option<(u64, u64)> = None; // (total_rounds, seed)
    for (l, r) in results.iter().enumerate() {
        match r {
            Ok(outcome) => {
                assert!(outcome.all_delivered());
                println!(
                    "  seed {:>10}: spans, {} rounds total, all {} messages delivered",
                    seeds[l], outcome.total_rounds, outcome.k
                );
                if best.is_none_or(|(rounds, _)| outcome.total_rounds < rounds) {
                    best = Some((outcome.total_rounds, seeds[l]));
                }
            }
            Err(BroadcastError::NotSpanning {
                subgraph,
                unreached,
            }) => println!(
                "  seed {:>10}: class {subgraph} left {unreached} nodes unreached — lane \
                 compacted out before routing",
                seeds[l]
            ),
            Err(e) => println!("  seed {:>10}: {e}", seeds[l]),
        }
    }
    let (rounds, seed) = best.expect("at least one seed spans");
    println!(
        "\n  cheapest spanning seed: {seed} at {rounds} rounds — found in one sweep \
         instead of {} sequential retries",
        seeds.len()
    );
}
