//! Datacenter gossip: the §1.2 "everyone broadcasts one value" workload
//! (k = n — one round of the broadcast congested clique) across network
//! fabrics of different redundancy, including the case where the operator
//! does **not** know the fabric's edge connectivity (exponential search).
//!
//! Scenario: every rack holds one health summary that every other rack
//! must learn. Fat fabrics (high λ) should disseminate in far fewer
//! rounds than thin ones — exactly Theorem 1's promise.
//!
//! ```text
//! cargo run --release --example datacenter_gossip
//! ```

use fast_broadcast::core::broadcast::{partition_broadcast, BroadcastConfig, BroadcastInput};
use fast_broadcast::core::exp_search::exp_search_broadcast;
use fast_broadcast::core::textbook::textbook_broadcast;
use fast_broadcast::graph::generators::{clique_chain, harary, random_regular, torus2d};
use fast_broadcast::graph::Graph;

fn main() {
    println!("datacenter gossip: every node broadcasts one value (k = n)\n");
    let fabrics: Vec<(&str, Graph, usize)> = vec![
        ("2-D torus 12×12 (thin, λ=4)", torus2d(12, 12), 4),
        (
            "clique-chain 6×24, 8 uplinks (λ=8)",
            clique_chain(6, 24, 8),
            8,
        ),
        ("circulant fat fabric (λ=24)", harary(24, 144), 24),
        ("random 16-regular fabric", random_regular(144, 16, 7), 16),
    ];

    println!(
        "{:<40} {:>6} {:>12} {:>12} {:>9}",
        "fabric", "n", "thm1 rounds", "textbook", "speedup"
    );
    for (name, g, lambda) in &fabrics {
        let input = BroadcastInput::one_per_node(g);
        let out = partition_broadcast(g, &input, *lambda, 99).expect("broadcast");
        assert!(out.all_delivered());
        let tb = textbook_broadcast(g, &input, 99).expect("textbook");
        println!(
            "{:<40} {:>6} {:>12} {:>12} {:>8.2}x",
            name,
            g.n(),
            out.total_rounds,
            tb.total_rounds,
            tb.total_rounds as f64 / out.total_rounds as f64
        );
    }

    // Operating without knowing λ: the exponential-search variant learns a
    // workable decomposition on its own (paper §1.1 Remark).
    println!("\nunknown-λ operation (exponential search) on the fat fabric:");
    let g = harary(24, 144);
    let input = BroadcastInput::one_per_node(&g);
    let (out, report) =
        exp_search_broadcast(&g, &input, &BroadcastConfig::with_seed(7)).expect("exp search");
    assert!(out.all_delivered());
    println!(
        "  learned δ = {}, tried λ̃ = {:?}, accepted λ̃ = {} → λ' = {} trees, {} rounds total",
        report.delta, report.tried, report.accepted, report.num_subgraphs, out.total_rounds
    );
}
