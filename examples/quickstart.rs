//! Quickstart: run the paper's broadcast (Theorem 1) on a well-connected
//! network and compare it with the textbook baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fast_broadcast::core::broadcast::{partition_broadcast, BroadcastInput};
use fast_broadcast::core::lower_bounds::{optimality_ratio, theorem3_broadcast_lb};
use fast_broadcast::core::textbook::textbook_broadcast;
use fast_broadcast::graph::generators::harary;
use fast_broadcast::graph::metrics::GraphParams;

fn main() {
    // A λ=16-edge-connected circulant network on 128 nodes.
    let lambda = 16;
    let g = harary(lambda, 128);
    let params = GraphParams::measure(&g);
    println!(
        "network: n = {}, m = {}, δ = {}, λ = {}, D = {:?}",
        params.n, params.m, params.delta, params.lambda, params.diameter
    );

    // k = 4n messages scattered uniformly at random.
    let k = 4 * g.n();
    let input = BroadcastInput::random_spread(&g, k, 2024);
    println!("broadcasting k = {k} messages…");

    // Theorem 1: partition broadcast.
    let outcome = partition_broadcast(&g, &input, lambda, 0xC0FFEE).expect("partition broadcast");
    assert!(outcome.all_delivered());
    println!(
        "\n== Theorem 1 (partition broadcast): {} rounds over {} edge-disjoint trees",
        outcome.total_rounds, outcome.num_subgraphs
    );
    print!("{}", outcome.phases.breakdown());

    // Textbook O(D + k) baseline.
    let tb = textbook_broadcast(&g, &input, 0xC0FFEE).expect("textbook broadcast");
    assert!(tb.all_delivered());
    println!(
        "\n== textbook (single BFS tree): {} rounds",
        tb.total_rounds
    );
    print!("{}", tb.phases.breakdown());

    // How close to the universal lower bound?
    let lb = theorem3_broadcast_lb(k as u64, lambda as u64);
    println!("\nuniversal lower bound (Theorem 3): Ω(k/λ) ≈ {lb:.0} rounds");
    println!(
        "optimality ratio: theorem 1 = {:.1}×LB, textbook = {:.1}×LB, speedup = {:.2}×",
        optimality_ratio(outcome.total_rounds, k as u64, lambda as u64),
        optimality_ratio(tb.total_rounds, k as u64, lambda as u64),
        tb.total_rounds as f64 / outcome.total_rounds as f64
    );
}
