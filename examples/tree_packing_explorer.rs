//! Tree-packing explorer: inspect the low-diameter packings of §3.1 on
//! contrasting topologies, including the GK13-style family where low
//! graph diameter *cannot* be inherited by the packing (Theorem 13).
//!
//! ```text
//! cargo run --release --example tree_packing_explorer
//! ```

use fast_broadcast::graph::algo::diameter::diameter_exact;
use fast_broadcast::graph::generators::{clique_chain, complete, harary, thick_path};
use fast_broadcast::graph::Graph;
use fast_broadcast::packing::fractional::FractionalView;
use fast_broadcast::packing::lower_bound_family::measure_gk13;
use fast_broadcast::packing::random_partition::partition_packing_retrying;
use fast_broadcast::packing::sampled::{lemma5_probability, sampled_packing};

fn main() {
    println!("Theorem 2 packings (edge-disjoint) across topologies:\n");
    let cases: Vec<(&str, Graph, usize, usize)> = vec![
        ("complete K_96", complete(96), 95, 8),
        ("circulant λ=24 n=120", harary(24, 120), 24, 4),
        ("thick path 10×16", thick_path(10, 16), 16, 2),
        ("clique chain 5×24 b=12", clique_chain(5, 24, 12), 12, 2),
    ];
    println!(
        "{:<26} {:>5} {:>7} {:>7} {:>9} {:>10} {:>12}",
        "topology", "n", "graphD", "trees", "disjoint", "max treeD", "frac weight"
    );
    for (name, g, _lambda, trees) in &cases {
        let d = diameter_exact(g).unwrap();
        let (packing, _, attempts) =
            partition_packing_retrying(g, *trees, 0, 1234, 30).expect("packing");
        packing.validate(g).expect("valid");
        let stats = packing.stats(g);
        let frac = FractionalView::of(&packing, g);
        println!(
            "{:<26} {:>5} {:>7} {:>7} {:>9} {:>10} {:>12.2}   (seed attempts: {attempts})",
            name,
            g.n(),
            d,
            stats.num_trees,
            stats.edge_disjoint,
            stats.max_diameter,
            frac.total_weight
        );
    }

    println!("\nTheorem 10 point (λ trees, congestion O(log n)) on the circulant:");
    let g = harary(24, 120);
    let p = lemma5_probability(g.n(), 24, 2.0);
    let rep = sampled_packing(&g, 24, p, 0, 9).expect("sampled");
    let stats = rep.packing.stats(&g);
    println!(
        "  {} trees, congestion {} (ln n = {:.1}), max tree diameter {}",
        stats.num_trees,
        stats.congestion,
        (g.n() as f64).ln(),
        stats.max_diameter
    );

    println!("\nTheorem 13 tension on the GK13-style family (λ = 6):");
    println!(
        "{:>8} {:>6} {:>8} {:>13} {:>8} {:>8}",
        "columns", "n", "graph D", "packing maxD", "n/λ", "blowup"
    );
    for columns in [16, 32, 64] {
        let r = measure_gk13(columns, 6, 2, 3).expect("gk13");
        println!(
            "{:>8} {:>6} {:>8} {:>13} {:>8.0} {:>7.1}x",
            columns,
            r.layout.n,
            r.graph_diameter,
            r.packing.max_diameter,
            r.n_over_lambda,
            r.blowup
        );
    }
    println!("\n→ the graph's diameter stays logarithmic while every packing is forced to Θ(n/λ).");
}
