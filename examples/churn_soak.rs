//! Long-lived service under topology churn: one [`ChurnSession`] carries
//! a broadcast service across dozens of epochs while a seeded
//! [`ChurnPlan`] rewires the network between phases — edges come and go,
//! nodes crash and revive. At every phase boundary the engine is
//! *repaired in place* (no rebuild), a connectivity watchdog re-measures
//! what the current graph supports, and the broadcast runs through the
//! retry-and-degrade ladder: fewer subgraphs under stress, a clean
//! `Disconnected` report (instead of a burned retry budget) while a
//! crashed node isolates itself.
//!
//! ```text
//! cargo run --release --example churn_soak
//! ```

use fast_broadcast::core::broadcast::{
    BroadcastConfig, BroadcastError, BroadcastInput, DEFAULT_PARTITION_C,
};
use fast_broadcast::core::partition::PartitionParams;
use fast_broadcast::core::watchdog::{
    partition_broadcast_degrading_hosted, watchdog, DegradePolicy, WatchdogMode,
};
use fast_broadcast::graph::generators::harary;
use fast_broadcast::sim::{ChurnPlan, ChurnSession, Mutation};

fn main() {
    let (lambda0, n, k, epochs) = (24usize, 96usize, 48usize, 24u64);
    let g = harary(lambda0, n);
    println!(
        "churn soak: n = {n}, initial λ = {lambda0}, m = {}, {k} messages per epoch\n",
        g.m()
    );

    // The service's launch-time parameter choice (Theorem 1): λ′ from the
    // λ the graph had when it was deployed.
    let params = PartitionParams::from_lambda(n, lambda0, DEFAULT_PARTITION_C);
    println!(
        "launch parameters: λ′ = {} edge-disjoint spanning subgraphs\n",
        params.num_subgraphs
    );

    // The nemesis: net-negative edge churn — the fabric sheds ~8 edges
    // per epoch, never pulling a live node below degree 3 — plus a
    // scripted node outage mid-soak (crash at epoch 8, revive at 11).
    let plan = ChurnPlan::new(2, 10, 0xC0FFEE).degree_floor(3);
    let policy = DegradePolicy::default(); // cheap δ-watchdog each attempt
    let mut churn = ChurnSession::new(g);

    let (mut ok, mut degraded_runs, mut skipped, mut failed) = (0u32, 0u32, 0u32, 0u32);
    for epoch in 0..epochs {
        // --- Phase boundary: drain this epoch's mutation batch into the
        // session; the CSR, engine slabs, and shard plan repair in place.
        let mut muts = plan.mutations(epoch, churn.graph(), churn.crashed());
        if epoch == 8 {
            muts.push(Mutation::Crash(7)); // parks node 7's live edges
        }
        if epoch == 11 {
            muts.push(Mutation::Revive(7)); // restores the parked edges
        }
        let (mut adds, mut removes, mut crashes, mut revives) = (0, 0, 0, 0);
        for m in &muts {
            match m {
                Mutation::AddEdge(..) => adds += 1,
                Mutation::RemoveEdge(..) => removes += 1,
                Mutation::Crash(_) => crashes += 1,
                Mutation::Revive(_) => revives += 1,
            }
        }
        churn.queue_mut().extend(muts);
        churn.apply_pending().expect("plan batches apply cleanly");
        let g = churn.graph();
        print!(
            "epoch {epoch:>2}: +{adds} -{removes} edges, {crashes} crash {revives} revive → m = {:>4}, δ = {:>2}",
            g.m(),
            g.min_degree()
        );

        // --- Periodic deep check: exact λ via max-flow (affordable at
        // experiment scale; the per-attempt watchdog uses the free δ bound).
        if epoch.is_multiple_of(4) {
            let rep = watchdog(
                g,
                params.num_subgraphs,
                WatchdogMode::Exact,
                DEFAULT_PARTITION_C,
            );
            print!(
                ", exact λ = {} (supports λ′ = {})",
                rep.lambda.unwrap(),
                rep.recommended_subgraphs
            );
        }
        println!();

        // --- The service itself: k-broadcast on the repaired engine,
        // degrading instead of failing when the watchdog says λ′ is
        // no longer viable.
        let input = BroadcastInput::random_spread(churn.graph(), k, epoch);
        let cfg = BroadcastConfig::with_seed(0x5EED ^ epoch);
        let res = churn.with_host(|host| {
            partition_broadcast_degrading_hosted(host, &input, params, &cfg, &policy)
        });
        match res {
            Ok((out, log)) => {
                ok += 1;
                if log.degraded {
                    degraded_runs += 1;
                }
                println!(
                    "          broadcast: {} rounds at λ′ = {}{}, {} attempt(s), delivered = {}",
                    out.total_rounds,
                    log.final_subgraphs,
                    if log.degraded { " (degraded)" } else { "" },
                    log.total_attempts(),
                    out.all_delivered()
                );
            }
            Err(BroadcastError::Disconnected) => {
                skipped += 1;
                println!("          broadcast: skipped — watchdog reports a disconnected graph (crashed node)");
            }
            Err(e) => {
                failed += 1;
                println!("          broadcast: failed — {e}");
            }
        }
    }

    let stats = churn.stats();
    println!(
        "\nsoak summary: {epochs} epochs, {} mutation batches repaired in place \
         (+{} / -{} edges, {} crashes, {} revives)",
        stats.batches, stats.edges_added, stats.edges_removed, stats.crashes, stats.revives
    );
    println!(
        "broadcasts: {ok} delivered ({degraded_runs} degraded), {skipped} skipped while disconnected, {failed} failed"
    );
    assert!(ok > 0, "soak never delivered a broadcast");
}
