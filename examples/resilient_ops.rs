//! Operating under attack: broadcast with a mobile edge adversary
//! (paper §1.2's secure-distributed-computing application).
//!
//! A monitoring fleet must distribute `k` alerts while an adversary
//! blackholes a few links every round. Replicating each alert over `r`
//! edge-disjoint trees of the Theorem 2 packing forces the adversary to
//! sever all `r` routes at once — watch starvation vanish as `r` grows.
//!
//! ```text
//! cargo run --release --example resilient_ops
//! ```

use fast_broadcast::core::broadcast::{BroadcastConfig, BroadcastInput};
use fast_broadcast::core::partition::PartitionParams;
use fast_broadcast::core::resilient::resilient_broadcast;
use fast_broadcast::graph::generators::harary;
use fast_broadcast::sim::FaultPlan;

fn main() {
    let lambda = 24;
    let n = 96;
    let g = harary(lambda, n);
    let input = BroadcastInput::random_spread(&g, 128, 1);
    let params = PartitionParams::explicit(4);
    println!(
        "fleet: n = {n}, λ = {lambda}, {} alerts over 4 edge-disjoint trees\n",
        input.k()
    );

    println!(
        "{:>13} {:>13} {:>15} {:>13} {:>9}",
        "faults/round", "replication", "starved nodes", "msgs dropped", "rounds"
    );
    for f in [0usize, 3, 6] {
        for r in [1usize, 2, 4] {
            let faults = (f > 0).then(|| FaultPlan::new(f, 0xFA11));
            // Absorb the rare non-spanning partition with fresh seeds.
            let out = (0..20u64)
                .find_map(|a| {
                    resilient_broadcast(
                        &g,
                        &input,
                        params,
                        r,
                        faults,
                        &BroadcastConfig::with_seed(0x0BE5 + a * 0x9E37),
                    )
                    .ok()
                })
                .expect("partition");
            println!(
                "{:>13} {:>13} {:>15} {:>13} {:>9}",
                f,
                out.replication,
                out.starved_nodes().len(),
                out.dropped,
                out.total_rounds
            );
        }
        println!();
    }
    println!("replication across edge-disjoint trees is the resilience mechanism [FP23] build on.");
}
