//! # fast-broadcast — Fast Broadcast in Highly Connected Networks
//!
//! A full reproduction of *"Fast Broadcast in Highly Connected Networks"*
//! (Chandra, Chang, Dory, Ghaffari, Leitersdorf — SPAA 2024,
//! arXiv:2404.12930) as a Rust workspace, built around a deterministic
//! CONGEST-model simulator.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — graph substrate: CSR graphs, generators with
//!   known-by-construction δ and λ, centralized ground truth (flows, cuts,
//!   diameters, exact APSP).
//! * [`sim`] — the synchronous CONGEST simulator: one O(log n)-bit message
//!   per edge-direction per round, congestion metering, phase composition.
//! * [`core`] — the paper's contribution: the communication-free random
//!   edge partition (Theorem 2), the `Õ((n+k)/λ)` k-broadcast (Theorem 1),
//!   the textbook `O(D+k)` baseline, and the universal lower bounds
//!   (Theorems 3 & 8).
//! * [`packing`] — low-diameter tree packings (§3.1, Appendices A & B).
//! * [`apsp`] — the approximate-APSP applications (§4.1–4.2).
//! * [`sparsify`] — cut approximation via sparsifiers (§4.3).
//!
//! ## Quickstart
//!
//! ```
//! use fast_broadcast::graph::generators::harary;
//! use fast_broadcast::core::broadcast::{partition_broadcast, BroadcastInput};
//!
//! // A 16-edge-connected network of 64 nodes.
//! let g = harary(16, 64);
//! // 128 messages, all initially at node 0.
//! let input = BroadcastInput::at_single_node(&g, 0, 128);
//! let outcome = partition_broadcast(&g, &input, 16, 0xC0FFEE).unwrap();
//! assert!(outcome.all_delivered());
//! println!("broadcast finished in {} rounds", outcome.total_rounds);
//! ```

pub use congest_apsp as apsp;
pub use congest_core as core;
pub use congest_graph as graph;
pub use congest_packing as packing;
pub use congest_sim as sim;
pub use congest_sparsify as sparsify;
