//! `fastbcast` — command-line driver for the fast-broadcast library.
//!
//! ```text
//! fastbcast params    <family>                         measure n/m/δ/λ/D (+ bridge diagnosis)
//! fastbcast broadcast <family> [--k K] [--seed S]      Theorem 1 vs textbook, with phase breakdown
//! fastbcast packing   <family> [--trees T] [--exact]   tree packings (partition / matroid union)
//! fastbcast apsp      <family> [--seed S]              (3,2)-approximate APSP quality report
//! fastbcast cuts      <family> [--eps E] [--seed S]    sparsifier all-cuts report
//! fastbcast serve     [--graphs G1+G2] [--jobs N] ...  multi-tenant session-pool server (job mix)
//! fastbcast snapshot  <family> [--phases N] [--cut K]  run K phases, checkpoint the engine to a file
//! fastbcast resume    <family> --in FILE [...]         restore the checkpoint, run the remaining phases
//!
//! <family> grammar:
//!   harary:L,N | complete:N | torus:RxC | hypercube:D | clique-chain:C,S,B
//!   thick-path:L,W | gnp:N,P | regular:N,D | gk13:COLS,L | barbell:S,P | bipartite:A,B
//! ```
//!
//! Examples:
//! ```text
//! fastbcast params harary:16,128
//! fastbcast broadcast harary:32,192 --k 768
//! fastbcast packing complete:64 --trees 8 --exact
//! ```

use fast_broadcast::apsp::unweighted_apsp_approx;
use fast_broadcast::core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastInput, DEFAULT_PARTITION_C,
};
use fast_broadcast::core::lower_bounds::{optimality_ratio, theorem3_broadcast_lb};
use fast_broadcast::core::partition::PartitionParams;
use fast_broadcast::core::textbook::textbook_broadcast;
use fast_broadcast::graph::algo::apsp::{apsp_unweighted, measure_stretch_unweighted};
use fast_broadcast::graph::algo::bridges::bridges;
use fast_broadcast::graph::algo::karger::{karger_min_cut, karger_whp_repetitions};
use fast_broadcast::graph::generators as gen;
use fast_broadcast::graph::metrics::GraphParams;
use fast_broadcast::graph::{Graph, WeightedGraph};
use fast_broadcast::packing::matroid::exact_tree_packing;
use fast_broadcast::packing::random_partition::partition_packing_retrying;
use fast_broadcast::sim::fault::FaultPlan;
use fast_broadcast::sim::protocol::NodeCtx;
use fast_broadcast::sim::rng::{mix64, phase_seed};
use fast_broadcast::sim::{
    EngineConfig, EvictionPolicy, Job, JobSpec, JobStatus, PoolError, PoolServer, Protocol, Session,
};
use fast_broadcast::sparsify::cuts::theorem7_all_cuts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", USAGE);
            Ok(())
        }
        "params" => cmd_params(args.get(1).ok_or("params needs a <family>")?),
        "broadcast" => cmd_broadcast(&args[1..]),
        "packing" => cmd_packing(&args[1..]),
        "apsp" => cmd_apsp(&args[1..]),
        "cuts" => cmd_cuts(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "snapshot" => cmd_snapshot(&args[1..]),
        "resume" => cmd_resume(&args[1..]),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

const USAGE: &str = "\
fastbcast — fast broadcast in highly connected networks (SPAA 2024 reproduction)

  fastbcast params    <family>
  fastbcast broadcast <family> [--k K] [--seed S]
  fastbcast packing   <family> [--trees T] [--exact] [--seed S]
  fastbcast apsp      <family> [--seed S]
  fastbcast cuts      <family> [--eps E] [--seed S]
  fastbcast serve     [--graphs F1+F2+..] [--jobs N] [--tenants T] [--queue Q]
                      [--mix flood,rumor,gossip] [--fault-edges F] [--seed S] [--serial]
                      [--warm-limit W] [--max-graphs G] [--max-warm-bytes B]
  fastbcast snapshot  <family> [--phases N] [--cut K] [--seed S] [--out FILE]
  fastbcast resume    <family> --in FILE [--phases N] [--cut K] [--seed S] [--verify]

families:
  harary:L,N         circulant with λ = L on N nodes
  complete:N         K_N
  torus:RxC          2-D torus
  hypercube:D        Q_D
  clique-chain:C,S,B C cliques of size S, B-wide bridges
  thick-path:L,W     L columns of width W
  gnp:N,P            Erdős–Rényi (connected resample)
  regular:N,D        random D-regular
  gk13:COLS,L        the Appendix B lower-bound family
  barbell:S,P        two S-cliques + P-edge path (λ = 1)
  bipartite:A,B      K_{A,B}";

/// Parse `--flag value` style options from the tail of an argument list.
fn opt<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("bad value for {flag}")),
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse a family spec like `harary:16,96`. Every malformed spec —
/// missing `:`, wrong parameter count, non-numeric parameter — is a
/// clean `Err`, never a panic.
fn parse_family(spec: &str) -> Result<Graph, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or(format!("family must be kind:params, got `{spec}`"))?;
    let nums = |arity: usize, grammar: &str| -> Result<Vec<usize>, String> {
        let v: Vec<usize> = rest
            .split([',', 'x'])
            .map(|x| {
                x.parse()
                    .map_err(|_| format!("bad number `{x}` in `{spec}`"))
            })
            .collect::<Result<_, _>>()?;
        if v.len() != arity {
            return Err(format!(
                "`{spec}` takes {arity} parameter(s): {grammar}, got {}",
                v.len()
            ));
        }
        Ok(v)
    };
    match kind {
        "harary" => {
            let v = nums(2, "harary:L,N")?;
            Ok(gen::harary(v[0], v[1]))
        }
        "complete" => Ok(gen::complete(nums(1, "complete:N")?[0])),
        "torus" => {
            let v = nums(2, "torus:RxC")?;
            Ok(gen::torus2d(v[0], v[1]))
        }
        "hypercube" => Ok(gen::hypercube(nums(1, "hypercube:D")?[0])),
        "clique-chain" => {
            let v = nums(3, "clique-chain:C,S,B")?;
            Ok(gen::clique_chain(v[0], v[1], v[2]))
        }
        "thick-path" => {
            let v = nums(2, "thick-path:L,W")?;
            Ok(gen::thick_path(v[0], v[1]))
        }
        "gnp" => {
            let (n, p) = rest.split_once(',').ok_or("gnp:N,P")?;
            let n: usize = n.parse().map_err(|_| format!("bad N `{n}` in `{spec}`"))?;
            let p: f64 = p.parse().map_err(|_| format!("bad P `{p}` in `{spec}`"))?;
            Ok(gen::gnp_connected(n, p, 0xC11))
        }
        "regular" => {
            let v = nums(2, "regular:N,D")?;
            Ok(gen::random_regular(v[0], v[1], 0xC11))
        }
        "gk13" => {
            let v = nums(2, "gk13:COLS,L")?;
            Ok(gen::gk13_lower_bound(v[0], v[1]).0)
        }
        "barbell" => {
            let v = nums(2, "barbell:S,P")?;
            Ok(gen::barbell(v[0], v[1]))
        }
        "bipartite" => {
            let v = nums(2, "bipartite:A,B")?;
            Ok(gen::complete_bipartite(v[0], v[1]))
        }
        other => Err(format!("unknown family kind `{other}`")),
    }
}

fn cmd_params(spec: &str) -> Result<(), String> {
    let g = parse_family(spec)?;
    let p = GraphParams::measure(&g);
    println!("family      : {spec}");
    println!("n           : {}", p.n);
    println!("m           : {}", p.m);
    println!("min degree δ: {}", p.delta);
    println!("edge conn λ : {} (exact, Dinic)", p.lambda);
    if g.n() <= 64 {
        let (mc, _) = karger_min_cut(&g, karger_whp_repetitions(g.n()).min(20_000), 7);
        println!("  karger λ̂  : {mc} (Monte-Carlo cross-check)");
    }
    match p.diameter {
        Some(d) => println!("diameter D  : {d}"),
        None => println!("diameter D  : ∞ (disconnected)"),
    }
    if let Some(r) = p.observation1_ratio() {
        println!("D·δ/n       : {r:.3} (Observation 1: ≤ 3)");
    }
    let br = bridges(&g);
    if br.is_empty() {
        println!("bridges     : none (2-edge-connected)");
    } else {
        println!(
            "bridges     : {} — λ = 1 regime; broadcast is Ω(k) here (paper §1)",
            br.len()
        );
    }
    Ok(())
}

fn cmd_broadcast(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("broadcast needs a <family>")?;
    let g = parse_family(spec)?;
    let k = opt(args, "--k", 2 * g.n())?;
    let seed: u64 = opt(args, "--seed", 42u64)?;
    let lambda = fast_broadcast::graph::algo::edge_connectivity(&g);
    if lambda == 0 {
        return Err("graph is disconnected".into());
    }
    let input = BroadcastInput::random_spread(&g, k, seed);
    let params = PartitionParams::from_lambda(g.n(), lambda, DEFAULT_PARTITION_C);
    println!(
        "family {spec}: n = {}, λ = {lambda}, k = {k}, λ' = {}",
        g.n(),
        params.num_subgraphs
    );

    let (out, attempts) =
        partition_broadcast_retrying(&g, &input, params, &BroadcastConfig::with_seed(seed), 30)
            .map_err(|e| e.to_string())?;
    assert!(out.all_delivered());
    println!(
        "\n== Theorem 1 broadcast: {} rounds (partition attempts: {attempts})",
        out.total_rounds
    );
    print!("{}", out.phases.breakdown());

    let tb = textbook_broadcast(&g, &input, seed).map_err(|e| e.to_string())?;
    assert!(tb.all_delivered());
    println!("\n== textbook baseline: {} rounds", tb.total_rounds);
    print!("{}", tb.phases.breakdown());

    let lb = theorem3_broadcast_lb(k as u64, lambda as u64);
    println!("\nuniversal LB (Thm 3) ≈ {lb:.0} rounds; optimality ratios: thm1 {:.1}×, textbook {:.1}×; speedup {:.2}×",
        optimality_ratio(out.total_rounds, k as u64, lambda as u64),
        optimality_ratio(tb.total_rounds, k as u64, lambda as u64),
        tb.total_rounds as f64 / out.total_rounds as f64);
    Ok(())
}

fn cmd_packing(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("packing needs a <family>")?;
    let g = parse_family(spec)?;
    let lambda = fast_broadcast::graph::algo::edge_connectivity(&g);
    let trees = opt(args, "--trees", (lambda / 2).max(1))?;
    let seed: u64 = opt(args, "--seed", 7u64)?;
    println!(
        "family {spec}: n = {}, m = {}, λ = {lambda}, requesting {trees} trees",
        g.n(),
        g.m()
    );
    let packing = if flag(args, "--exact") {
        println!("construction: exact matroid union (Nash-Williams optimal)");
        exact_tree_packing(&g, trees, 0).ok_or(format!(
            "no edge-disjoint packing of {trees} spanning trees exists"
        ))?
    } else {
        println!("construction: Theorem 2 random partition + per-class BFS");
        let (p, _, attempts) = partition_packing_retrying(&g, trees, 0, seed, 30)
            .map_err(|e| format!("{e}; try --exact or fewer --trees"))?;
        println!("(spanning after {attempts} seed attempt(s))");
        p
    };
    packing.validate(&g).map_err(|e| e.to_string())?;
    let stats = packing.stats(&g);
    println!("\ntrees         : {}", stats.num_trees);
    println!("edge-disjoint : {}", stats.edge_disjoint);
    println!("congestion    : {}", stats.congestion);
    println!("max diameter  : {}", stats.max_diameter);
    println!("mean diameter : {:.1}", stats.mean_diameter);
    println!("per-tree      : {:?}", stats.tree_diameters);
    let n = g.n() as f64;
    println!(
        "Theorem 2 envelope D·δ/(n·ln n) : {:.3}",
        stats.max_diameter as f64 * g.min_degree() as f64 / (n * n.ln())
    );
    Ok(())
}

fn cmd_apsp(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("apsp needs a <family>")?;
    let g = parse_family(spec)?;
    let seed: u64 = opt(args, "--seed", 3u64)?;
    let lambda = fast_broadcast::graph::algo::edge_connectivity(&g);
    if lambda == 0 {
        return Err("graph is disconnected".into());
    }
    println!("family {spec}: n = {}, λ = {lambda}", g.n());
    let out = unweighted_apsp_approx(&g, lambda, seed).map_err(|e| e.to_string())?;
    let exact = apsp_unweighted(&g);
    let alpha = measure_stretch_unweighted(&exact, &out.estimate, 2).map_err(|e| e.to_string())?;
    println!("\nclusters      : {}", out.cluster_graph.centers.len());
    println!("total rounds  : {}", out.total_rounds);
    println!("verified α    : {alpha:.3} (Theorem 4 bound: 3, plus additive 2)");
    print!("{}", out.phases.breakdown());
    Ok(())
}

fn cmd_cuts(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("cuts needs a <family>")?;
    let g = parse_family(spec)?;
    let eps: f64 = opt(args, "--eps", 0.5f64)?;
    let seed: u64 = opt(args, "--seed", 9u64)?;
    let lambda = fast_broadcast::graph::algo::edge_connectivity(&g);
    if lambda == 0 {
        return Err("graph is disconnected".into());
    }
    println!(
        "family {spec}: n = {}, m = {}, λ = {lambda}, ε = {eps}",
        g.n(),
        g.m()
    );
    let out = theorem7_all_cuts(&WeightedGraph::unit(g.clone()), eps, lambda, seed)
        .map_err(|e| e.to_string())?;
    println!(
        "\nsparsifier    : {} / {} edges",
        out.sparsifier_edges,
        g.m()
    );
    println!("total rounds  : {}", out.total_rounds);
    println!("cuts audited  : {}", out.quality.num_cuts);
    println!("worst error   : {:.4}", out.quality.max_rel_error);
    println!("mean error    : {:.5}", out.quality.mean_rel_error);
    println!(
        "min cut       : {} → {} (G → sparsifier)",
        out.quality.min_cut_g, out.quality.min_cut_h
    );
    Ok(())
}

/// The in-process serving driver: register a graph mix, synthesize a
/// deterministic multi-tenant job stream over it, push it through the
/// session-pool server (bounded queue → batched wide lane groups), and
/// report throughput plus the per-tenant congestion/bit meters.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let graphs_spec: String = opt(args, "--graphs", "harary:6,256+torus:16x16".to_string())?;
    let jobs: u64 = opt(args, "--jobs", 96u64)?;
    let tenants: u32 = opt(args, "--tenants", 4u32)?;
    let queue: usize = opt(args, "--queue", 32usize)?;
    let seed: u64 = opt(args, "--seed", 42u64)?;
    let fault_edges: usize = opt(args, "--fault-edges", 0usize)?;
    let mix_spec: String = opt(args, "--mix", "flood,rumor,gossip".to_string())?;
    let warm_limit: usize = opt(args, "--warm-limit", 4usize)?;
    let max_graphs: usize = opt(args, "--max-graphs", usize::MAX)?;
    let max_warm_bytes: usize = opt(args, "--max-warm-bytes", usize::MAX)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if tenants == 0 {
        return Err("--tenants must be at least 1".into());
    }
    if queue == 0 {
        return Err("--queue must be at least 1".into());
    }
    if max_graphs == 0 {
        return Err("--max-graphs must be at least 1".into());
    }
    if max_warm_bytes == 0 {
        return Err("--max-warm-bytes must be at least 1".into());
    }
    let graphs: Vec<Graph> = graphs_spec
        .split('+')
        .map(parse_family)
        .collect::<Result<_, _>>()?;
    let mix: Vec<&str> = mix_spec.split(',').collect();
    for fam in &mix {
        if !matches!(*fam, "flood" | "rumor" | "gossip") {
            return Err(format!(
                "unknown mix family `{fam}` (expected flood|rumor|gossip)"
            ));
        }
    }

    let config = if flag(args, "--serial") {
        EngineConfig::serial()
    } else {
        EngineConfig::default()
    };
    let mut server = PoolServer::new(config, queue);
    server.pool_mut().set_warm_limit(warm_limit);
    server.pool_mut().set_policy(EvictionPolicy {
        max_graphs,
        max_warm_bytes,
    });
    let keys: Vec<_> = graphs
        .iter()
        .map(|g| (server.register_graph(g.clone()), g.n()))
        .collect();
    println!(
        "serving {jobs} jobs: {} graph(s) × {} famil(y/ies), {tenants} tenant(s), queue capacity {queue}",
        keys.len(),
        mix.len()
    );

    let mut out = Vec::with_capacity(jobs as usize);
    let mut reregistered = 0u64;
    let t0 = std::time::Instant::now();
    for j in 0..jobs {
        let (key, n) = keys[j as usize % keys.len()];
        let protocol = match mix[(j as usize / keys.len()) % mix.len()] {
            "flood" => JobSpec::FloodMax,
            "rumor" => JobSpec::Rumor {
                source: (mix64(seed ^ j) % n as u64) as u32,
            },
            _ => JobSpec::Gossip { rounds: 4 + j % 4 },
        };
        let faults = (fault_edges > 0 && j % 2 == 1)
            .then(|| FaultPlan::new(fault_edges, mix64(seed ^ 0xFA17 ^ j)));
        let job = Job {
            graph: key,
            protocol,
            seed: mix64(seed ^ mix64(j)),
            faults,
            tenant: (j % tenants as u64) as u32,
        };
        // `submit` drains the backlog when the bounded queue fills — the
        // in-process face of backpressure. An aggressive `--max-graphs`
        // budget can age this job's graph out between drains; keys are
        // content fingerprints, so re-registering restores the same key
        // (cold) and the submission proceeds.
        match server.submit(job.clone(), &mut out) {
            Ok(_) => {}
            Err(PoolError::UnknownGraph(_)) => {
                reregistered += 1;
                server.register_graph(graphs[j as usize % keys.len()].clone());
                server.submit(job, &mut out).map_err(|e| e.to_string())?;
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    server.drain(&mut out);
    let secs = t0.elapsed().as_secs_f64();

    let failed = out
        .iter()
        .filter(|o| !matches!(o.status, JobStatus::Done))
        .count();
    println!(
        "\ndrained     : {} jobs in {secs:.3} s → {:.0} jobs/sec",
        out.len(),
        out.len() as f64 / secs.max(1e-9)
    );
    println!(
        "batching    : {} wide-batched ({} refilled mid-sweep), {} sequential, {failed} round-limited",
        server.batched_jobs(),
        server.refilled_jobs(),
        server.solo_jobs()
    );
    println!(
        "pool        : {} graph entr(y/ies) live, {} warm hits, {} cold builds, ~{} KiB warm",
        server.pool().len(),
        server.pool().hits(),
        server.pool().misses(),
        server.pool().warm_bytes_total() / 1024
    );
    println!(
        "eviction    : {} graphs aged out, {} warm states dropped, {reregistered} re-registrations",
        server.pool().graph_evictions(),
        server.pool().warm_evictions()
    );
    println!("\nper-tenant meters:");
    println!("  tenant      jobs  refilled    rounds  messages   dropped  max-cong  max-bits");
    for (t, m) in server.meters() {
        println!(
            "  {t:<8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            m.jobs,
            m.refilled_jobs,
            m.rounds,
            m.messages,
            m.dropped,
            m.max_edge_congestion,
            m.max_message_bits
        );
    }
    Ok(())
}

/// The checkpoint walkthrough's phase protocol: every node stirs its
/// inbox into a splitmix accumulator and chatters a salted digest to all
/// neighbors for a fixed number of rounds. Fully deterministic in
/// (node, round, phase salt) — so an interrupted run and its resumed
/// half are comparable bit-for-bit against an uninterrupted one.
struct Pulse {
    node: u64,
    salt: u64,
    acc: u64,
    rounds: u64,
}

impl Protocol for Pulse {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc = mix64(self.acc ^ m);
        }
        if ctx.round < self.rounds {
            ctx.send_all(mix64(self.salt ^ self.node ^ (ctx.round << 32) ^ self.acc));
        }
        ctx.set_done(ctx.round >= self.rounds);
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Run phases `[from, to)` of the deterministic pulse composition on
/// `session`, printing each phase's post-phase state hash.
fn run_pulse_phases(
    session: &mut Session<'_>,
    from: u64,
    to: u64,
    seed: u64,
) -> Result<Vec<u64>, String> {
    let mut last = Vec::new();
    for k in from..to {
        let salt = phase_seed(seed, k);
        let rounds = 4 + k % 3;
        let out = session
            .run(
                |v, _| Pulse {
                    node: v as u64,
                    salt,
                    acc: mix64(salt ^ v as u64),
                    rounds,
                },
                EngineConfig::serial().seed(salt),
            )
            .map_err(|e| e.to_string())?;
        last = out.take_outputs();
        println!(
            "phase {k:>2}: {rounds} rounds, state hash {:016x}",
            session.state_hash()
        );
    }
    Ok(last)
}

/// Run the first `--cut` phases of a deterministic multi-phase
/// composition, then checkpoint the engine into `--out` — the file
/// `fastbcast resume` continues from, in this or any other process.
fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("snapshot needs a <family>")?;
    let g = parse_family(spec)?;
    let phases: u64 = opt(args, "--phases", 6u64)?;
    let cut: u64 = opt(args, "--cut", phases / 2)?;
    let seed: u64 = opt(args, "--seed", 42u64)?;
    let path: String = opt(args, "--out", "fastbcast.snap".to_string())?;
    if cut > phases {
        return Err(format!("--cut {cut} exceeds --phases {phases}"));
    }
    println!(
        "family {spec}: n = {}, m = {}, fingerprint {:016x}",
        g.n(),
        g.m(),
        g.fingerprint()
    );
    let mut session = Session::new(&g);
    run_pulse_phases(&mut session, 0, cut, seed)?;
    let bytes = session.snapshot();
    std::fs::write(&path, &bytes).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!(
        "checkpoint  : {path} ({} bytes) after phase {cut}/{phases}, state hash {:016x}",
        bytes.len(),
        session.state_hash()
    );
    println!("resume with : fastbcast resume {spec} --in {path} --phases {phases} --cut {cut} --seed {seed}");
    Ok(())
}

/// Restore a `fastbcast snapshot` checkpoint and run the remaining
/// phases. With `--verify`, also rerun the whole composition
/// uninterrupted and check the outputs and final state hash agree —
/// the CLI face of the snapshot→restore→continue bit-identity oracle.
fn cmd_resume(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("resume needs a <family>")?;
    let g = parse_family(spec)?;
    let path: String = opt(args, "--in", String::new())?;
    if path.is_empty() {
        return Err("resume needs --in FILE".into());
    }
    let phases: u64 = opt(args, "--phases", 6u64)?;
    let cut: u64 = opt(args, "--cut", phases / 2)?;
    let seed: u64 = opt(args, "--seed", 42u64)?;
    if cut > phases {
        return Err(format!("--cut {cut} exceeds --phases {phases}"));
    }
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let header = fast_broadcast::sim::snapshot::peek(&bytes).map_err(|e| e.to_string())?;
    println!(
        "checkpoint  : {path} ({} bytes), graph {:016x}, state hash {:016x}",
        bytes.len(),
        header.fingerprint,
        header.state_hash
    );
    let mut session = Session::restore(&g, &bytes).map_err(|e| e.to_string())?;
    println!("restored    : family {spec}, continuing at phase {cut}/{phases}");
    let outputs = run_pulse_phases(&mut session, cut, phases, seed)?;
    let final_hash = session.state_hash();
    println!("final state hash {final_hash:016x}");

    if flag(args, "--verify") {
        let mut oracle = Session::new(&g);
        let expected = run_pulse_phases(&mut oracle, 0, phases, seed)?;
        if (cut < phases && expected != outputs) || oracle.state_hash() != final_hash {
            return Err("verification FAILED: resumed run diverged from uninterrupted run".into());
        }
        println!("verified    : resumed run is bit-identical to an uninterrupted run");
    }
    Ok(())
}
