//! Cross-crate property-based tests (proptest): the paper's invariants
//! must hold for *arbitrary* valid inputs, not just the families the
//! experiments use.

use fast_broadcast::core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastInput,
};
use fast_broadcast::core::partition::{edge_color, EdgePartition, PartitionParams};
use fast_broadcast::core::pipeline::expected_checksums;
use fast_broadcast::graph::algo::apsp::apsp_unweighted;
use fast_broadcast::graph::algo::connectivity::edge_connectivity;
use fast_broadcast::graph::generators::{gnp_connected, harary};
use fast_broadcast::graph::{Graph, GraphBuilder};
use proptest::prelude::*;

/// Arbitrary connected simple graph: a random spanning tree plus extra
/// random edges.
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::HashSet::new();
        // Random spanning tree.
        for v in 1..n as u32 {
            let u = rng.gen_range(0..v);
            edges.insert((u.min(v), u.max(v)));
        }
        // Extra edges, density ~2 per node.
        for _ in 0..2 * n {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for &(u, v) in &edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2's partition always covers every edge exactly once, with
    /// colors agreed by both endpoints (it's a pure function).
    #[test]
    fn partition_covers_exactly_once(g in arb_connected_graph(60), seed in any::<u64>(), lp in 1usize..6) {
        let part = EdgePartition::compute(&g, PartitionParams::explicit(lp), seed);
        prop_assert_eq!(part.colors.len(), g.m());
        prop_assert!(part.colors.iter().all(|&c| (c as usize) < lp));
        prop_assert_eq!(part.class_sizes().iter().sum::<usize>(), g.m());
        for (_, u, v) in g.edge_list() {
            prop_assert_eq!(edge_color(seed, u, v, lp), edge_color(seed, v, u, lp));
        }
    }

    /// The broadcast checksum machinery never confuses different message
    /// multisets (up to the astronomically unlikely 128-bit collision).
    #[test]
    fn checksums_separate_multisets(
        mut msgs in proptest::collection::vec((any::<u32>(), any::<u64>()), 1..50),
        extra in (any::<u32>(), any::<u64>()),
    ) {
        let full = expected_checksums(msgs.iter());
        msgs.push(extra);
        let bigger = expected_checksums(msgs.iter());
        prop_assert_ne!(full, bigger);
    }

    /// BFS distances from the simulator's distributed BFS equal the
    /// centralized ones on arbitrary connected graphs.
    #[test]
    fn distributed_bfs_matches_centralized(g in arb_connected_graph(50)) {
        use fast_broadcast::core::bfs::BfsProtocol;
        use fast_broadcast::sim::{run_protocol, EngineConfig};
        let out = run_protocol(&g, |v, _| BfsProtocol::new(0, v), EngineConfig::default()).unwrap();
        let exact = apsp_unweighted(&g);
        for (v, info) in out.outputs.iter().enumerate() {
            prop_assert_eq!(info.depth, exact[0][v]);
        }
    }

    /// λ never exceeds δ on any graph (paper §2 preliminaries), and the
    /// Dinic implementation respects that.
    #[test]
    fn lambda_at_most_delta(g in arb_connected_graph(40)) {
        prop_assert!(edge_connectivity(&g) <= g.min_degree());
    }
}

proptest! {
    // The full-broadcast property test is expensive per case; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Theorem 1 delivers every message to every node for arbitrary
    /// placements on a well-connected base graph.
    #[test]
    fn broadcast_delivers_arbitrary_placements(
        placements in proptest::collection::vec((0u32..64, any::<u64>()), 1..120),
        seed in any::<u64>(),
    ) {
        let g = harary(16, 64);
        let input = BroadcastInput { messages: placements };
        let params = PartitionParams::from_lambda(64, 16, 2.0);
        let (out, _) = partition_broadcast_retrying(
            &g, &input, params, &BroadcastConfig::with_seed(seed), 30,
        ).unwrap();
        prop_assert!(out.all_delivered());
    }

    /// Random dense-enough G(n,p) graphs broadcast successfully with the
    /// measured λ.
    #[test]
    fn broadcast_on_random_graphs(seed in any::<u64>()) {
        let g = gnp_connected(72, 0.25, seed);
        let lambda = edge_connectivity(&g);
        prop_assume!(lambda >= 2);
        let input = BroadcastInput::one_per_node(&g);
        let params = PartitionParams::from_lambda(72, lambda, 2.0);
        let (out, _) = partition_broadcast_retrying(
            &g, &input, params, &BroadcastConfig::with_seed(seed ^ 0xF00), 30,
        ).unwrap();
        prop_assert!(out.all_delivered());
    }
}
