//! End-to-end Theorem 1 validation across graph families, input shapes,
//! and parameter regimes — the headline integration test.

use fast_broadcast::core::broadcast::{
    partition_broadcast, partition_broadcast_retrying, BroadcastConfig, BroadcastInput,
    DEFAULT_PARTITION_C,
};
use fast_broadcast::core::exp_search::exp_search_broadcast;
use fast_broadcast::core::partition::PartitionParams;
use fast_broadcast::core::textbook::textbook_broadcast;
use fast_broadcast::graph::generators::{
    clique_chain, complete, harary, hypercube, random_regular, thick_path, torus2d,
};
use fast_broadcast::graph::Graph;

fn families() -> Vec<(String, Graph, usize)> {
    vec![
        ("harary16_96".into(), harary(16, 96), 16),
        ("harary32_128".into(), harary(32, 128), 32),
        ("complete64".into(), complete(64), 63),
        ("hypercube6".into(), hypercube(6), 6),
        ("torus8x8".into(), torus2d(8, 8), 4),
        ("thick_path8x12".into(), thick_path(8, 12), 12),
        ("clique_chain4x24b12".into(), clique_chain(4, 24, 12), 12),
        ("random_regular96_12".into(), random_regular(96, 12, 5), 12),
    ]
}

#[test]
fn theorem1_delivers_on_every_family() {
    for (name, g, lambda) in families() {
        let k = 2 * g.n();
        let input = BroadcastInput::random_spread(&g, k, 11);
        let params = PartitionParams::from_lambda(g.n(), lambda, DEFAULT_PARTITION_C);
        let (out, attempts) =
            partition_broadcast_retrying(&g, &input, params, &BroadcastConfig::with_seed(17), 30)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.all_delivered(), "{name}: delivery failed");
        assert!(
            attempts <= 5,
            "{name}: {attempts} attempts is suspicious for a w.h.p. event"
        );
        // Congestion sanity: no edge carries more than O(k) messages.
        assert!(
            out.stats.max_edge_congestion <= 4 * k as u64 + 64,
            "{name}: congestion {} vs k = {k}",
            out.stats.max_edge_congestion
        );
    }
}

#[test]
fn theorem1_and_textbook_agree_on_checksums() {
    let g = harary(16, 80);
    let input = BroadcastInput::random_spread(&g, 120, 3);
    let p = partition_broadcast(&g, &input, 16, 5).unwrap();
    let t = textbook_broadcast(&g, &input, 5).unwrap();
    assert!(p.all_delivered());
    assert!(t.all_delivered());
    // Different id assignments (numbering vs input order) still cover the
    // same payload multiset — compare the payload-only parts by recomputing
    // expected sums from the input directly.
    assert_eq!(p.k, t.k);
}

#[test]
fn single_source_and_adversarial_placements() {
    let g = harary(16, 96);
    // All messages at the max-degree node, at the "last" node, and split
    // between two far nodes.
    let placements: Vec<BroadcastInput> = vec![
        BroadcastInput::at_single_node(&g, 0, 150),
        BroadcastInput::at_single_node(&g, 95, 150),
        BroadcastInput {
            messages: (0..150)
                .map(|i| (if i % 2 == 0 { 0 } else { 48 }, i as u64 * 31 + 7))
                .collect(),
        },
    ];
    for (i, input) in placements.iter().enumerate() {
        let out = partition_broadcast(&g, input, 16, 23 + i as u64).unwrap();
        assert!(out.all_delivered(), "placement {i}");
    }
}

#[test]
fn rounds_scale_inverse_with_lambda() {
    // Same n, k; growing λ ⇒ more parallel trees ⇒ fewer rounds.
    let n = 120;
    let k = 6 * n;
    let mut prev_rounds = u64::MAX;
    for lambda in [8usize, 24, 48] {
        let g = harary(lambda, n);
        let input = BroadcastInput::random_spread(&g, k, 7);
        let params = PartitionParams::from_lambda(n, lambda, DEFAULT_PARTITION_C);
        let (out, _) =
            partition_broadcast_retrying(&g, &input, params, &BroadcastConfig::with_seed(29), 30)
                .unwrap();
        assert!(out.all_delivered());
        assert!(
            out.total_rounds < prev_rounds,
            "λ = {lambda}: rounds {} did not improve on {prev_rounds}",
            out.total_rounds
        );
        prev_rounds = out.total_rounds;
    }
}

#[test]
fn exp_search_matches_known_lambda_performance() {
    let g = harary(24, 96);
    let input = BroadcastInput::one_per_node(&g);
    let known = partition_broadcast(&g, &input, 24, 31).unwrap();
    let (unknown, report) =
        exp_search_broadcast(&g, &input, &BroadcastConfig::with_seed(31)).unwrap();
    assert!(known.all_delivered());
    assert!(unknown.all_delivered());
    // The search pays extra validation rounds but must stay within a small
    // multiple (the paper's geometric-sum argument).
    assert!(
        unknown.total_rounds <= 6 * known.total_rounds + 200,
        "exp search {} vs known-λ {}",
        unknown.total_rounds,
        known.total_rounds
    );
    assert_eq!(report.delta, 24);
}

#[test]
fn k_smaller_than_subgraph_count_still_works() {
    let g = complete(64);
    let input = BroadcastInput::random_spread(&g, 3, 1); // k = 3 ≪ λ'
    let out = partition_broadcast(&g, &input, 63, 2).unwrap();
    assert!(out.all_delivered());
}

#[test]
fn textbook_on_lambda_one_graph() {
    // Theorem 1 has no advantage at λ = 1; the textbook baseline is the
    // right tool and must still deliver.
    let g = fast_broadcast::graph::generators::barbell(10, 6);
    let input = BroadcastInput::random_spread(&g, 40, 3);
    let out = textbook_broadcast(&g, &input, 13).unwrap();
    assert!(out.all_delivered());
}
