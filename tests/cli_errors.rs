//! `fastbcast` CLI error-path contract: every malformed invocation —
//! bad family specs, non-numeric flag values, unknown subcommands,
//! missing arguments — exits non-zero with an `error:` line plus the
//! usage text on stderr, and never panics or silently succeeds.

use std::process::Command;

fn fastbcast(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fastbcast"))
        .args(args)
        .output()
        .expect("spawn fastbcast")
}

#[test]
fn bad_invocations_fail_with_usage_on_stderr() {
    // (args, substring the error message must carry)
    let table: &[(&[&str], &str)] = &[
        (&[], "missing subcommand"),
        (&["frobnicate"], "unknown subcommand"),
        (&["params"], "params needs a <family>"),
        (&["params", "harary"], "kind:params"),
        (&["params", "klein:4,4"], "unknown family kind"),
        (&["params", "harary:a,b"], "bad number"),
        (&["params", "harary:16"], "2 parameter(s)"),
        (&["params", "complete:"], "bad number"),
        (&["params", "complete:8,9"], "1 parameter(s)"),
        (&["params", "torus:3"], "2 parameter(s)"),
        (&["params", "hypercube:3,3"], "1 parameter(s)"),
        (&["params", "clique-chain:4,6"], "3 parameter(s)"),
        (&["params", "thick-path:9"], "2 parameter(s)"),
        (&["params", "regular:64"], "2 parameter(s)"),
        (&["params", "gk13:4"], "2 parameter(s)"),
        (&["params", "barbell:8"], "2 parameter(s)"),
        (&["params", "bipartite:4"], "2 parameter(s)"),
        (&["params", "gnp:64"], "gnp:N,P"),
        (&["params", "gnp:x,0.5"], "bad N"),
        (&["broadcast"], "broadcast needs a <family>"),
        (
            &["broadcast", "harary:4,32", "--k", "zebra"],
            "bad value for --k",
        ),
        (
            &["broadcast", "harary:4,32", "--seed"],
            "--seed needs a value",
        ),
        (
            &["packing", "complete:16", "--trees", "-3"],
            "bad value for --trees",
        ),
        (
            &["apsp", "harary:4,32", "--seed", "1.5"],
            "bad value for --seed",
        ),
        (
            &["cuts", "harary:4,32", "--eps", "wide"],
            "bad value for --eps",
        ),
        (&["serve", "--jobs", "many"], "bad value for --jobs"),
        (&["serve", "--jobs", "0"], "--jobs must be at least 1"),
        (&["serve", "--queue", "0"], "--queue must be at least 1"),
        (&["serve", "--graphs", "harary:4"], "2 parameter(s)"),
        (&["serve", "--mix", "flood,osmosis"], "unknown mix family"),
        (
            &["serve", "--warm-limit", "cosy"],
            "bad value for --warm-limit",
        ),
        (&["serve", "--warm-limit"], "--warm-limit needs a value"),
        (
            &["serve", "--max-graphs", "-2"],
            "bad value for --max-graphs",
        ),
        (
            &["serve", "--max-graphs", "0"],
            "--max-graphs must be at least 1",
        ),
        (
            &["serve", "--max-warm-bytes", "4MiB"],
            "bad value for --max-warm-bytes",
        ),
        (
            &["serve", "--max-warm-bytes", "0"],
            "--max-warm-bytes must be at least 1",
        ),
    ];
    for (args, needle) in table {
        let out = fastbcast(args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !out.status.success(),
            "fastbcast {args:?} should fail, got success\nstderr: {stderr}"
        );
        assert_eq!(
            out.status.code(),
            Some(1),
            "fastbcast {args:?} should exit 1 (a panic exits 101)\nstderr: {stderr}"
        );
        assert!(
            stderr.contains("error:"),
            "fastbcast {args:?} stderr missing `error:`\nstderr: {stderr}"
        );
        assert!(
            stderr.contains(needle),
            "fastbcast {args:?} stderr missing `{needle}`\nstderr: {stderr}"
        );
        assert!(
            stderr.contains("fastbcast params"),
            "fastbcast {args:?} stderr missing usage text\nstderr: {stderr}"
        );
    }
}

#[test]
fn good_invocations_still_succeed() {
    for args in [
        &["params", "harary:4,16"][..],
        &["help"],
        &[
            "serve",
            "--jobs",
            "8",
            "--graphs",
            "harary:4,32",
            "--serial",
        ],
    ] {
        let out = fastbcast(args);
        assert!(
            out.status.success(),
            "fastbcast {args:?} failed\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let serve = fastbcast(&[
        "serve",
        "--jobs",
        "8",
        "--graphs",
        "harary:4,32",
        "--serial",
    ]);
    let stdout = String::from_utf8_lossy(&serve.stdout);
    assert!(stdout.contains("jobs/sec"), "serve output: {stdout}");
    assert!(
        stdout.contains("per-tenant meters"),
        "serve output: {stdout}"
    );
    assert!(
        stdout.contains("refilled mid-sweep"),
        "serve output: {stdout}"
    );

    // An aggressive eviction budget: two graphs alternating under
    // --max-graphs 1 forces graph aging + re-registration mid-stream,
    // and the run still completes with eviction stats reported.
    let serve = fastbcast(&[
        "serve",
        "--jobs",
        "24",
        "--graphs",
        "harary:4,32+torus:4x8",
        "--queue",
        "4",
        "--max-graphs",
        "1",
        "--max-warm-bytes",
        "65536",
        "--warm-limit",
        "1",
        "--serial",
    ]);
    let stdout = String::from_utf8_lossy(&serve.stdout);
    assert!(
        serve.status.success(),
        "aggressive-eviction serve failed\nstderr: {}",
        String::from_utf8_lossy(&serve.stderr)
    );
    let aged: u64 = stdout
        .lines()
        .find_map(|l| l.split_once(" graphs aged out").map(|(pre, _)| pre))
        .and_then(|pre| pre.rsplit(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no eviction stats in serve output: {stdout}"));
    assert!(aged > 0, "aggressive budget must actually evict: {stdout}");
}
