//! Integration tests for the extension modules: resilient broadcast under
//! injected faults, the congested-clique simulation, scheduled broadcast
//! over shared packings, and the Theorem 9 decode pipeline — each crossing
//! at least two crates.

use fast_broadcast::apsp::weighted_apsp_approx;
use fast_broadcast::core::broadcast::{BroadcastConfig, BroadcastInput};
use fast_broadcast::core::congested_clique::{simulate_bcc, simulate_bcc_round};
use fast_broadcast::core::partition::PartitionParams;
use fast_broadcast::core::resilient::resilient_broadcast;
use fast_broadcast::graph::generators::{decode_theorem9, harary, theorem9_instance};
use fast_broadcast::packing::matroid::exact_tree_packing;
use fast_broadcast::packing::scheduled_broadcast::scheduled_packing_broadcast;
use fast_broadcast::sim::FaultPlan;

#[test]
fn resilient_broadcast_full_matrix() {
    let g = harary(24, 72);
    let input = BroadcastInput::random_spread(&g, 72, 9);
    let params = PartitionParams::explicit(4);
    let run = |r: usize, f: usize, seed: u64| {
        (0..20u64)
            .find_map(|a| {
                resilient_broadcast(
                    &g,
                    &input,
                    params,
                    r,
                    (f > 0).then(|| FaultPlan::new(f, 0xF ^ seed)),
                    &BroadcastConfig::with_seed(seed.wrapping_add(a * 0x9E37)),
                )
                .ok()
            })
            .expect("partition must eventually span")
    };
    // No faults: every replication level delivers.
    for r in [1, 2, 4] {
        assert!(run(r, 0, 100 + r as u64).all_delivered(), "r = {r}, f = 0");
    }
    // Under attack, max replication must deliver; starvation is monotone
    // (statistically) in r — assert the endpoints.
    let heavy_single = run(1, 6, 7);
    let heavy_full = run(4, 6, 7);
    assert!(
        heavy_full.all_delivered(),
        "r = 4 must absorb 6 faults/round"
    );
    assert!(
        heavy_full.starved_nodes().len() <= heavy_single.starved_nodes().len(),
        "replication cannot hurt"
    );
}

#[test]
fn bcc_simulation_supports_iterated_computation() {
    // Two BCC rounds compute the global sum via tree-free aggregation:
    // round 0 shares values, round 1 shares the locally-computed sum.
    let g = harary(16, 64);
    let initial: Vec<u32> = (0..64u32).map(|v| v + 1).collect();
    let expected_sum: u64 = initial.iter().map(|&x| x as u64).sum();
    let out = simulate_bcc(&g, &initial, 16, 2, 5, |_, _, view| {
        view.iter().sum::<u64>() as u32
    })
    .unwrap();
    assert!(out.final_view.iter().all(|&x| x == expected_sum));
    assert_eq!(out.rounds_per_bcc_round.len(), 2);
    assert!(out.total_rounds > 0);
}

#[test]
fn bcc_round_cost_is_sublinear_in_k_over_lambda_regime() {
    // One BCC round = n-message broadcast; on a λ = 24 graph it must beat
    // the textbook's Ω(n + D) by a visible margin... at minimum, be within
    // the Õ(n/λ)·polylog envelope.
    let g = harary(24, 120);
    let values: Vec<u32> = (0..120).collect();
    let (_, cost, _) = simulate_bcc_round(&g, &values, 24, 3).unwrap();
    let n = 120f64;
    let envelope = (n * n.ln() / 24.0 + n.ln() * n.ln()) * 8.0 + n; // generous constants
    assert!(
        (cost as f64) < envelope,
        "BCC round cost {cost} outside Õ(n/λ) envelope {envelope:.0}"
    );
}

#[test]
fn scheduled_broadcast_over_exact_matroid_packing() {
    // End-to-end: exact Nash-Williams packing + Theorem 12 scheduling.
    let g = harary(8, 48);
    let packing = exact_tree_packing(&g, 4, 0).expect("⌊8/2⌋ = 4 trees");
    let input = BroadcastInput::random_spread(&g, 96, 2);
    let out = scheduled_packing_broadcast(&g, &packing, &input, 6, 11).unwrap();
    assert!(out.all_delivered());
    // 4 trees ⇒ per-tree share is k/4; rounds should sit well below the
    // single-tree cost of k + depth.
    assert!(
        out.stats.rounds < 96 + 40,
        "rounds {} suggest no parallelism",
        out.stats.rounds
    );
}

#[test]
fn theorem9_decoding_through_real_apsp_pipeline() {
    // Build the §4.4 lower-bound instance, run the real Theorem 5 APSP
    // (stretch 3), and recover every hidden digit from v1's estimates.
    let inst = theorem9_instance(28, 5, 3.0, 2.0, 17);
    let out = weighted_apsp_approx(&inst.graph, 2, 5, 21).expect("theorem 5");
    let decoded = decode_theorem9(&inst, &out.estimate[0]);
    assert_eq!(
        decoded[2..],
        inst.hidden_k[2..],
        "α-approximate APSP must reveal the adversarially hidden digits"
    );
}

#[test]
fn blackout_leaves_bfs_unreached_not_misdelivered() {
    // Sanity: under total blackout the BFS wave never leaves the root;
    // the run terminates (BFS is quiescence-tolerant by design) and the
    // outputs honestly report every other node as unreached — never a
    // fabricated tree.
    use fast_broadcast::core::bfs::BfsProtocol;
    use fast_broadcast::sim::{run_protocol, EngineConfig};
    let g = harary(8, 32);
    let out = run_protocol(
        &g,
        |v, _| BfsProtocol::new(0, v),
        EngineConfig::default()
            .max_rounds(100)
            .with_faults(FaultPlan::new(16 * g.m(), 1)),
    )
    .unwrap();
    assert!(out.stats.dropped_messages > 0);
    assert!(out.outputs[0].reached);
    for v in 1..g.n() {
        assert!(!out.outputs[v].reached, "node {v} cannot have been reached");
    }
}
