//! Integration tests for the §4 applications: (3,2)-APSP, spanner-based
//! weighted APSP, and all-cuts sparsification — each verified against
//! exact ground truth.

use fast_broadcast::apsp::baswana_sen::{baswana_sen_spanner, corollary1_k};
use fast_broadcast::apsp::{unweighted_apsp_approx, weighted_apsp_approx};
use fast_broadcast::graph::algo::apsp::{
    apsp_unweighted, apsp_weighted, measure_stretch_unweighted, measure_stretch_weighted,
};
use fast_broadcast::graph::generators::{clique_chain, harary, random_regular, torus2d};
use fast_broadcast::graph::WeightedGraph;
use fast_broadcast::sparsify::cuts::theorem7_all_cuts;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn theorem4_holds_on_heterogeneous_families() {
    for (g, lambda) in [
        (harary(12, 84), 12),
        (torus2d(7, 8), 4),
        (clique_chain(4, 18, 9), 9),
        (random_regular(80, 10, 3), 10),
    ] {
        let out = unweighted_apsp_approx(&g, lambda, 77).expect("theorem 4");
        let exact = apsp_unweighted(&g);
        let alpha = measure_stretch_unweighted(&exact, &out.estimate, 2)
            .expect("estimates must never underestimate");
        assert!(alpha <= 3.0 + 1e-9, "stretch {alpha} > 3");
    }
}

#[test]
fn theorem5_stretch_budget_across_k() {
    let base = harary(14, 70);
    let mut rng = SmallRng::seed_from_u64(21);
    let w: Vec<f64> = (0..base.m())
        .map(|_| rng.gen_range(1..200) as f64)
        .collect();
    let g = WeightedGraph::new(base, w);
    let exact = apsp_weighted(&g);
    let mut last_size = usize::MAX;
    for k in [1usize, 2, 3, corollary1_k(70)] {
        let out = weighted_apsp_approx(&g, k, 14, 5).expect("theorem 5");
        let stretch = measure_stretch_weighted(&exact, &out.estimate).expect("dominating");
        assert!(
            stretch <= (2 * k - 1) as f64 + 1e-9,
            "k = {k}: stretch {stretch} > {}",
            2 * k - 1
        );
        assert!(
            out.spanner_edges <= last_size,
            "k = {k}: spanner must shrink or hold as k grows"
        );
        last_size = out.spanner_edges;
    }
}

#[test]
fn spanner_subgraph_property() {
    // Every spanner edge must be a graph edge with its original weight.
    let base = harary(10, 50);
    let g = WeightedGraph::unit(base);
    let sp = baswana_sen_spanner(&g, 3, 9);
    for &e in &sp.edges {
        assert!((e as usize) < g.m());
    }
    let h = sp.as_graph(&g);
    assert_eq!(h.n(), g.n());
    assert!(h.m() <= g.m());
    for (e, u, v) in h.graph().edge_list() {
        assert!(g.graph().has_edge(u, v));
        assert_eq!(h.weight(e), 1.0);
    }
}

#[test]
fn theorem7_quality_improves_with_smaller_eps() {
    let g = WeightedGraph::unit(fast_broadcast::graph::generators::complete(128));
    let loose = theorem7_all_cuts(&g, 0.8, 127, 3).expect("eps 0.8");
    let tight = theorem7_all_cuts(&g, 0.3, 127, 3).expect("eps 0.3");
    // Smaller ε ⇒ bigger sparsifier.
    assert!(
        tight.sparsifier_edges >= loose.sparsifier_edges,
        "tighter ε must not shrink the sparsifier: {} vs {}",
        tight.sparsifier_edges,
        loose.sparsifier_edges
    );
    // And (statistically) better cut quality; allow equality.
    assert!(
        tight.quality.max_rel_error <= loose.quality.max_rel_error + 0.1,
        "tight ε quality {} ≫ loose {}",
        tight.quality.max_rel_error,
        loose.quality.max_rel_error
    );
}

#[test]
fn theorem7_rounds_scale_with_sparsifier_size() {
    let g = WeightedGraph::unit(harary(24, 96));
    let out = theorem7_all_cuts(&g, 0.5, 24, 1).expect("theorem 7");
    // Broadcast term should dominate: rounds at least sparsifier/λ'-ish,
    // at most a polylog multiple.
    let m_tilde = out.sparsifier_edges as f64;
    assert!(
        (out.total_rounds as f64) < 40.0 * m_tilde,
        "rounds {} look unbounded vs m̃ {m_tilde}",
        out.total_rounds
    );
    assert!(out.total_rounds as f64 >= m_tilde / 24.0);
}
