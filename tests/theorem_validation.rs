//! Quantitative validation of the paper's theorem statements at
//! integration scale: Observation 1, Lemma 5, Theorem 2 (diameter bound +
//! failure decay), Theorem 1's round formula, and Theorem 3's lower bound.

use fast_broadcast::core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastInput,
};
use fast_broadcast::core::lower_bounds::theorem3_broadcast_lb;
use fast_broadcast::core::partition::{sample_edges, EdgePartition, PartitionParams};
use fast_broadcast::graph::algo::components::is_spanning_connected;
use fast_broadcast::graph::generators::{clique_chain, harary, thick_path};
use fast_broadcast::graph::metrics::GraphParams;

#[test]
fn observation1_diameter_bound() {
    // D = O(n/δ), constant ≤ 3 by the proof.
    for g in [
        harary(8, 96),
        harary(24, 96),
        thick_path(10, 10),
        clique_chain(5, 16, 4),
    ] {
        let p = GraphParams::measure(&g);
        let ratio = p.observation1_ratio().expect("connected");
        assert!(ratio <= 3.0, "Observation 1 violated: ratio = {ratio}");
    }
}

#[test]
fn lemma5_spanning_probability_grows_with_c() {
    // Sampling at C·ln n/λ: failures must vanish as C grows.
    let lambda = 12;
    let g = harary(lambda, 144);
    let n = g.n() as f64;
    let trials = 30;
    let mut failures_by_c = Vec::new();
    for c in [0.5, 1.0, 3.0] {
        let p = (c * n.ln() / lambda as f64).min(1.0);
        let failures = (0..trials)
            .filter(|&s| {
                let mask = sample_edges(&g, p, 1000 + s);
                !is_spanning_connected(&g, |e| mask[e as usize])
            })
            .count();
        failures_by_c.push(failures);
    }
    assert!(
        failures_by_c[2] <= failures_by_c[0],
        "failures must not increase with C: {failures_by_c:?}"
    );
    assert_eq!(
        failures_by_c[2], 0,
        "C = 3 must always span at this scale: {failures_by_c:?}"
    );
}

#[test]
fn theorem2_diameter_bound_at_scale() {
    // λ' classes on a 256-node, λ=32 circulant: every class spanning with
    // diameter within the O(C·n·ln n/δ) envelope.
    let lambda = 32;
    let g = harary(lambda, 256);
    let params = PartitionParams::from_lambda(256, lambda, 2.0);
    assert!(params.num_subgraphs >= 2);
    let mut worst_ratio = 0.0f64;
    let mut spanned = 0;
    let trials = 5;
    for seed in 0..trials {
        let part = EdgePartition::compute(&g, params, 500 + seed);
        let diams = part.subgraph_diameters(&g);
        if diams.iter().all(Option::is_some) {
            spanned += 1;
            let n = g.n() as f64;
            let delta = g.min_degree() as f64;
            let bound = 2.0 * n * n.ln() / delta;
            for d in diams.iter().flatten() {
                worst_ratio = worst_ratio.max(*d as f64 / bound);
            }
        }
    }
    assert_eq!(spanned, trials, "all trials must span at C = 2, n = 256");
    assert!(
        worst_ratio <= 1.0,
        "class diameter exceeded the Theorem 2 envelope: ratio {worst_ratio}"
    );
}

#[test]
fn theorem1_round_formula_envelope() {
    // Measured rounds within a constant multiple of the formula
    // (n·ln n)/δ + (k·ln n)/λ across the (k, λ) grid.
    for lambda in [16usize, 32] {
        let n = 128;
        let g = harary(lambda, n);
        for k_mult in [1usize, 4] {
            let k = n * k_mult;
            let input = BroadcastInput::random_spread(&g, k, 2);
            let params = PartitionParams::from_lambda(n, lambda, 2.0);
            let (out, _) = partition_broadcast_retrying(
                &g,
                &input,
                params,
                &BroadcastConfig::with_seed(3),
                30,
            )
            .unwrap();
            assert!(out.all_delivered());
            let ln_n = (n as f64).ln();
            let formula =
                (n as f64 * ln_n) / g.min_degree() as f64 + (k as f64 * ln_n) / lambda as f64;
            let ratio = out.total_rounds as f64 / formula;
            assert!(
                ratio <= 8.0,
                "λ={lambda} k={k}: measured {} vs formula {formula:.0} (ratio {ratio:.1})",
                out.total_rounds
            );
        }
    }
}

#[test]
fn no_algorithm_beats_theorem3_bound() {
    // Our own measured rounds must respect the universal lower bound —
    // a consistency check wiring the calculator to real runs.
    let lambda = 16;
    let g = harary(lambda, 96);
    let k = 4 * g.n();
    let input = BroadcastInput::random_spread(&g, k, 8);
    let params = PartitionParams::from_lambda(g.n(), lambda, 2.0);
    let (out, _) =
        partition_broadcast_retrying(&g, &input, params, &BroadcastConfig::with_seed(9), 30)
            .unwrap();
    let lb = theorem3_broadcast_lb(k as u64, lambda as u64);
    assert!(
        (out.total_rounds as f64) >= lb,
        "measured {} rounds below the information-theoretic bound {lb:.0}?!",
        out.total_rounds
    );
}
