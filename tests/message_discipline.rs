//! The CONGEST O(log n)-bit message discipline, checked rather than
//! assumed: every protocol in the workspace must ship messages of a small
//! constant number of machine words — never growing with k, n, or the
//! number of subgraphs. The engine meters the largest message of every
//! run ([`fast_broadcast::sim::RunStats::max_message_bits`]); these tests
//! pin the ceilings.

use fast_broadcast::core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastInput,
};
use fast_broadcast::core::partition::PartitionParams;
use fast_broadcast::core::textbook::textbook_broadcast;
use fast_broadcast::graph::generators::harary;

/// A generous constant ceiling: three 64-bit words. Every wire format in
/// the workspace (ids + payload + tags) fits; anything larger would mean
/// a protocol smuggling non-CONGEST amounts of data per round.
const CEILING_BITS: usize = 192;

#[test]
fn theorem1_messages_fit_constant_words() {
    let g = harary(16, 96);
    for k in [24usize, 96, 384] {
        let input = BroadcastInput::random_spread(&g, k, 1);
        let params = PartitionParams::from_lambda(96, 16, 2.0);
        let (out, _) =
            partition_broadcast_retrying(&g, &input, params, &BroadcastConfig::with_seed(5), 30)
                .unwrap();
        assert!(out.all_delivered());
        assert!(
            out.stats.max_message_bits <= CEILING_BITS,
            "k = {k}: message of {} bits exceeds the CONGEST ceiling",
            out.stats.max_message_bits
        );
    }
}

#[test]
fn message_size_does_not_grow_with_k() {
    // The defining property of O(log n) messages: quadrupling k leaves
    // the max message size unchanged (contrast with shipping message
    // *sets*, which would grow linearly).
    let g = harary(16, 96);
    let size_at = |k: usize| {
        let input = BroadcastInput::random_spread(&g, k, 2);
        let params = PartitionParams::from_lambda(96, 16, 2.0);
        let (out, _) =
            partition_broadcast_retrying(&g, &input, params, &BroadcastConfig::with_seed(7), 30)
                .unwrap();
        out.stats.max_message_bits
    };
    assert_eq!(size_at(48), size_at(192));
}

#[test]
fn textbook_messages_fit_too() {
    let g = harary(8, 64);
    let input = BroadcastInput::random_spread(&g, 128, 3);
    let out = textbook_broadcast(&g, &input, 9).unwrap();
    assert!(out.all_delivered());
    assert!(out.stats.max_message_bits <= CEILING_BITS);
}

#[test]
fn congestion_accounting_matches_lemma1_claim() {
    // Lemma 1: congestion O(k) on the single tree. Theorem 1: congestion
    // O(k/λ′)·const per edge in the routing phase. Check the *ratio*.
    let g = harary(32, 96);
    let k = 8 * 96;
    let input = BroadcastInput::random_spread(&g, k, 4);
    let tb = textbook_broadcast(&g, &input, 11).unwrap();
    let params = PartitionParams::from_lambda(96, 32, 2.0);
    let (pt, _) =
        partition_broadcast_retrying(&g, &input, params, &BroadcastConfig::with_seed(11), 30)
            .unwrap();
    let tb_routing = tb
        .phases
        .phases()
        .find(|(n, _)| n.contains("pipeline"))
        .unwrap()
        .1
        .max_edge_congestion;
    let pt_routing = pt
        .phases
        .phases()
        .find(|(n, _)| n.contains("routing"))
        .unwrap()
        .1
        .max_edge_congestion;
    assert!(
        pt_routing < tb_routing,
        "splitting k over λ' trees must reduce per-edge congestion: {pt_routing} vs {tb_routing}"
    );
}
