//! Determinism guarantees: identical seeds produce identical outcomes, and
//! parallel vs serial engine stepping is bit-identical — the property that
//! makes every experiment in this repository reproducible from one u64.

use fast_broadcast::core::bfs::BfsProtocol;
use fast_broadcast::core::broadcast::{partition_broadcast, BroadcastInput};
use fast_broadcast::core::partition::{EdgePartition, PartitionParams};
use fast_broadcast::graph::generators::{harary, torus2d};
use fast_broadcast::sim::{run_protocol, EngineConfig};

#[test]
fn same_seed_same_broadcast_outcome() {
    let g = harary(16, 64);
    let input = BroadcastInput::random_spread(&g, 100, 5);
    let a = partition_broadcast(&g, &input, 16, 42).unwrap();
    let b = partition_broadcast(&g, &input, 16, 42).unwrap();
    assert_eq!(a.total_rounds, b.total_rounds);
    assert_eq!(a.subgraph_heights, b.subgraph_heights);
    assert_eq!(a.expected, b.expected);
    for (ra, rb) in a.per_node.iter().zip(b.per_node.iter()) {
        assert_eq!(ra, rb);
    }
}

#[test]
fn different_seed_different_partition() {
    let g = harary(16, 64);
    let p1 = EdgePartition::compute(&g, PartitionParams::explicit(4), 1);
    let p2 = EdgePartition::compute(&g, PartitionParams::explicit(4), 2);
    assert_ne!(p1.colors, p2.colors);
}

#[test]
fn parallel_and_serial_engines_agree_exactly() {
    let g = torus2d(8, 8);
    let par = run_protocol(
        &g,
        |v, _| BfsProtocol::new(0, v),
        EngineConfig::default().seed(9),
    )
    .unwrap();
    let ser = {
        let mut cfg = EngineConfig::serial();
        cfg.seed = 9;
        run_protocol(&g, |v, _| BfsProtocol::new(0, v), cfg).unwrap()
    };
    assert_eq!(par.stats, ser.stats);
    assert_eq!(par.outputs.len(), ser.outputs.len());
    for (a, b) in par.outputs.iter().zip(ser.outputs.iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    // Run the same protocol under thread pools of different widths.
    let g = harary(12, 72);
    let baseline = run_protocol(
        &g,
        |v, _| BfsProtocol::new(3, v),
        EngineConfig::default().seed(4),
    )
    .unwrap();
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let out = pool.install(|| {
            run_protocol(
                &g,
                |v, _| BfsProtocol::new(3, v),
                EngineConfig::default().seed(4),
            )
            .unwrap()
        });
        assert_eq!(out.stats, baseline.stats, "threads = {threads}");
        for (a, b) in out.outputs.iter().zip(baseline.outputs.iter()) {
            assert_eq!(a, b, "threads = {threads}");
        }
    }
}
